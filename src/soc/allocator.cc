#include "soc/allocator.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"

namespace smt {

namespace {

/** Sort key with total deterministic order. */
struct RankedThread
{
    int id;
    double primary;
    double secondary;
};

/**
 * Quantize a metric into coarse buckets before ranking. Interval
 * metrics are noisy (a few thousand commits per epoch, cache-cold
 * right after a migration); ranking on raw values lets near-ties
 * flip order every epoch and the chip thrash-migrates. Bucketing
 * makes rankings — and therefore placements — stable unless
 * behaviour genuinely changes.
 */
double
quantize(double v, double step)
{
    return static_cast<double>(
        static_cast<long long>(v / step));
}

/** Descending primary, ascending secondary, ascending id. */
void
sortRanked(std::vector<RankedThread> &v)
{
    std::sort(v.begin(), v.end(),
              [](const RankedThread &a, const RankedThread &b) {
                  if (a.primary != b.primary)
                      return a.primary > b.primary;
                  if (a.secondary != b.secondary)
                      return a.secondary < b.secondary;
                  return a.id < b.id;
              });
}

/**
 * Static round-robin: the cold-start spread, forever. The reference
 * point every other allocator is compared against — it never pays a
 * migration and never reacts to behaviour.
 */
class RoundRobinAllocator : public ThreadToCoreAllocator
{
  public:
    const char *name() const override { return "round-robin"; }

    std::vector<int>
    allocate(const ChipTopology &topo,
             const std::vector<ThreadPerfSample> &metrics,
             std::uint64_t) override
    {
        return spreadPlacement(topo, metrics.size());
    }
};

/**
 * Greedy IPC symbiosis: rank threads by interval committed IPC
 * (high-ILP first, L1D miss rate breaking ties toward the less
 * memory-bound thread) and deal them to cores serpentine-style
 * (0..C-1 then C-1..0), so each core pairs high-ILP threads with
 * memory-bound ones instead of stacking two of a kind — the
 * intra-core policy then has complementary demand to arbitrate.
 */
class SymbiosisAllocator : public ThreadToCoreAllocator
{
  public:
    const char *name() const override { return "symbiosis"; }

    std::vector<int>
    allocate(const ChipTopology &topo,
             const std::vector<ThreadPerfSample> &metrics,
             std::uint64_t epoch) override
    {
        if (epoch == 0)
            return spreadPlacement(topo, metrics.size());

        std::vector<RankedThread> ranked;
        ranked.reserve(metrics.size());
        for (std::size_t i = 0; i < metrics.size(); ++i) {
            ranked.push_back({static_cast<int>(i),
                              quantize(metrics[i].ipc, 0.25),
                              quantize(metrics[i].l1MissRate,
                                       0.02)});
        }
        sortRanked(ranked);

        std::vector<int> coreOf(metrics.size(), 0);
        const int c = topo.numCores;
        for (std::size_t k = 0; k < ranked.size(); ++k) {
            const int lap = static_cast<int>(k) / c;
            const int pos = static_cast<int>(k) % c;
            coreOf[static_cast<std::size_t>(ranked[k].id)] =
                (lap & 1) ? c - 1 - pos : pos;
        }
        return coreOf;
    }
};

/**
 * SYNPA-style metric-score allocator: condense each thread's
 * interval behaviour into one memory-intensity score (LLC-bound
 * misses per kilo-instruction plus scaled L1D miss rate, the two
 * signals the SYNPA family feeds its per-pair predictors), then
 * place threads most-intense-first onto the currently
 * least-loaded core by accumulated score. This spreads bandwidth
 * demand across cores and private hierarchies instead of pairing by
 * IPC alone.
 */
class SynpaAllocator : public ThreadToCoreAllocator
{
  public:
    const char *name() const override { return "synpa"; }

    std::vector<int>
    allocate(const ChipTopology &topo,
             const std::vector<ThreadPerfSample> &metrics,
             std::uint64_t epoch) override
    {
        if (epoch == 0)
            return spreadPlacement(topo, metrics.size());

        std::vector<RankedThread> ranked;
        ranked.reserve(metrics.size());
        for (std::size_t i = 0; i < metrics.size(); ++i) {
            const double score = metrics[i].l2Mpki +
                100.0 * metrics[i].l1MissRate;
            ranked.push_back({static_cast<int>(i),
                              quantize(score, 4.0),
                              quantize(metrics[i].ipc, 0.25)});
        }
        sortRanked(ranked);

        std::vector<int> coreOf(metrics.size(), 0);
        std::vector<double> load(
            static_cast<std::size_t>(topo.numCores), 0.0);
        std::vector<int> occupancy(
            static_cast<std::size_t>(topo.numCores), 0);
        for (const RankedThread &t : ranked) {
            int best = -1;
            for (int c = 0; c < topo.numCores; ++c) {
                if (occupancy[c] >= topo.contextsPerCore)
                    continue;
                if (best < 0 || load[c] < load[best])
                    best = c; // strict <: ties keep the lowest core
            }
            SMT_ASSERT(best >= 0, "no core has a free context");
            coreOf[static_cast<std::size_t>(t.id)] = best;
            load[static_cast<std::size_t>(best)] += t.primary;
            ++occupancy[static_cast<std::size_t>(best)];
        }
        return coreOf;
    }
};

} // anonymous namespace

std::vector<int>
spreadPlacement(const ChipTopology &topo, std::size_t numThreads)
{
    std::vector<int> coreOf(numThreads, 0);
    for (std::size_t i = 0; i < numThreads; ++i)
        coreOf[i] = static_cast<int>(i) % topo.numCores;
    return coreOf;
}

std::vector<int>
canonicalizePlacement(const std::vector<int> &current,
                      const std::vector<int> &proposed, int numCores)
{
    SMT_ASSERT(current.size() == proposed.size(),
               "placement size mismatch");
    // overlap[p][c]: threads that proposed group p shares with the
    // threads currently on core c.
    std::vector<std::vector<int>> overlap(
        static_cast<std::size_t>(numCores),
        std::vector<int>(static_cast<std::size_t>(numCores), 0));
    for (std::size_t i = 0; i < proposed.size(); ++i)
        ++overlap[proposed[i]][current[i]];

    // Greedy maximum-overlap matching, deterministic: repeatedly take
    // the (group, core) pair with the largest overlap; ties prefer
    // the lower group id, then the lower core id.
    std::vector<int> groupToCore(static_cast<std::size_t>(numCores),
                                 -1);
    std::vector<bool> coreUsed(static_cast<std::size_t>(numCores),
                               false);
    for (int round = 0; round < numCores; ++round) {
        int bestG = -1, bestC = -1, bestOv = -1;
        for (int g = 0; g < numCores; ++g) {
            if (groupToCore[g] >= 0)
                continue;
            for (int c = 0; c < numCores; ++c) {
                if (coreUsed[c])
                    continue;
                if (overlap[g][c] > bestOv) {
                    bestOv = overlap[g][c];
                    bestG = g;
                    bestC = c;
                }
            }
        }
        groupToCore[bestG] = bestC;
        coreUsed[bestC] = true;
    }

    std::vector<int> out(proposed.size());
    for (std::size_t i = 0; i < proposed.size(); ++i)
        out[i] = groupToCore[proposed[i]];
    return out;
}

const char *
allocatorKindName(AllocatorKind k)
{
    switch (k) {
      case AllocatorKind::RoundRobin: return "round-robin";
      case AllocatorKind::Symbiosis: return "symbiosis";
      case AllocatorKind::Synpa: return "synpa";
    }
    panic("bad allocator kind %d", static_cast<int>(k));
}

AllocatorKind
parseAllocatorKind(const std::string &name)
{
    if (name == "round-robin" || name == "rr" ||
        name == "ROUND-ROBIN")
        return AllocatorKind::RoundRobin;
    if (name == "symbiosis" || name == "SYMBIOSIS")
        return AllocatorKind::Symbiosis;
    if (name == "synpa" || name == "SYNPA")
        return AllocatorKind::Synpa;
    fatal("unknown allocator '%s' (want round-robin, symbiosis or "
          "synpa)", name.c_str());
}

std::unique_ptr<ThreadToCoreAllocator>
makeAllocator(AllocatorKind k)
{
    switch (k) {
      case AllocatorKind::RoundRobin:
        return std::make_unique<RoundRobinAllocator>();
      case AllocatorKind::Symbiosis:
        return std::make_unique<SymbiosisAllocator>();
      case AllocatorKind::Synpa:
        return std::make_unique<SynpaAllocator>();
    }
    panic("bad allocator kind %d", static_cast<int>(k));
}

} // namespace smt
