/**
 * @file
 * Quickstart: build a 2-context SMT core running a MIX workload
 * (gzip + mcf) under DCRA, simulate 50k committed instructions, and
 * print the headline numbers. This is the smallest end-to-end use of
 * the public API:
 *
 *   SimConfig -> Simulator -> run() -> SimResult.
 */

#include <cstdio>

#include "sim/metrics.hh"
#include "sim/simulator.hh"

int
main()
{
    using namespace smt;

    SimConfig cfg;            // paper Table 2 baseline
    cfg.seed = 42;

    // A classic MIX pair: one high-ILP thread, one memory-bounded.
    const std::vector<std::string> workload = {"gzip", "mcf"};

    Simulator sim(cfg, workload, PolicyKind::Dcra);
    const SimResult res = sim.run(/*commitLimit=*/50'000);

    std::printf("DCRA on {gzip, mcf} for %llu cycles\n",
                static_cast<unsigned long long>(res.cycles));
    std::printf("%-8s %10s %8s %12s %12s\n", "thread", "commits",
                "IPC", "L1D miss%", "L2 miss%");
    for (const ThreadResult &t : res.threads) {
        const double l1pct = t.l1dAccesses
            ? 100.0 * static_cast<double>(t.l1dMisses) /
                static_cast<double>(t.l1dAccesses)
            : 0.0;
        std::printf("%-8s %10llu %8.3f %11.2f%% %11.2f%%\n",
                    t.bench.c_str(),
                    static_cast<unsigned long long>(t.committed),
                    t.ipc, l1pct, t.l2MissRatePct());
    }
    std::printf("throughput (sum IPC): %.3f\n", res.throughput());
    std::printf("avg outstanding L2 misses when busy: %.2f\n",
                res.mlpBusyMean);
    return 0;
}
