/**
 * @file
 * Compare every implemented policy on one workload. Demonstrates the
 * ExperimentContext API: single-thread baselines are computed and
 * cached automatically, and each run reports both raw throughput and
 * the Hmean throughput/fairness balance.
 *
 * Usage: policy_comparison [bench1 bench2 ...]
 * Default workload: gzip + twolf (the paper's MIX2 group 1).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/metrics.hh"

int
main(int argc, char **argv)
{
    using namespace smt;

    std::vector<std::string> benches;
    for (int i = 1; i < argc; ++i)
        benches.emplace_back(argv[i]);
    if (benches.empty())
        benches = {"gzip", "twolf"};

    SimConfig cfg; // paper Table 2 baseline
    ExperimentContext ctx(cfg, 60'000, 10'000);

    Workload w;
    w.id = "custom";
    w.numThreads = static_cast<int>(benches.size());
    w.type = WorkloadType::MIX;
    w.group = 0;
    w.benches = benches;

    std::printf("workload:");
    for (const auto &b : benches)
        std::printf(" %s", b.c_str());
    std::printf("\n\n%-12s %10s %8s  per-thread IPC\n", "policy",
                "throughput", "hmean");

    const PolicyKind kinds[] = {
        PolicyKind::RoundRobin, PolicyKind::Icount,
        PolicyKind::Stall, PolicyKind::Flush, PolicyKind::FlushPp,
        PolicyKind::DataGating, PolicyKind::Pdg, PolicyKind::Sra,
        PolicyKind::Dcra,
    };
    for (const PolicyKind k : kinds) {
        const RunSummary s = ctx.runWorkload(w, k);
        std::printf("%-12s %10.3f %8.3f ", policyKindName(k),
                    s.throughput, s.hmean);
        for (std::size_t i = 0; i < benches.size(); ++i)
            std::printf(" %s=%.3f", benches[i].c_str(),
                        s.multiIpc[i]);
        std::printf("\n");
    }

    std::printf("\nsingle-thread baselines:");
    for (const auto &b : benches)
        std::printf(" %s=%.3f", b.c_str(), ctx.singleThreadIpc(b));
    std::printf("\n");
    return 0;
}
