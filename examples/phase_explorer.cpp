/**
 * @file
 * Watch DCRA make its decisions in real time: every sampling period
 * this prints each thread's phase (slow/fast), per-resource activity
 * and occupancy against the current E_slow limits, and whether the
 * thread is fetch-gated. A direct visualisation of paper sections
 * 3.1-3.2.
 *
 * Usage: phase_explorer [bench1 bench2 ...]   (default: gzip mcf)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "policy/dcra.hh"
#include "sim/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace smt;

    std::vector<std::string> benches;
    for (int i = 1; i < argc; ++i)
        benches.emplace_back(argv[i]);
    if (benches.empty())
        benches = {"gzip", "mcf"};

    SimConfig cfg;
    Simulator sim(cfg, benches, PolicyKind::Dcra);
    Pipeline &pipe = sim.pipeline();
    auto &dcra = static_cast<DcraPolicy &>(sim.policy());

    const ResourceType watched[] = {ResIqInt, ResIqLs, ResRegInt,
                                    ResRegFp};

    std::printf("cycle-by-cycle DCRA state, sampled every 2000 "
                "cycles\n");
    std::printf("occupancy cells: occ/limit (limit = E_slow of that "
                "resource)\n\n");
    std::printf("%8s", "cycle");
    for (std::size_t t = 0; t < benches.size(); ++t)
        std::printf(" | %-8s phase gate  iqInt   iqLs  regInt  regFp",
                    benches[t].c_str());
    std::printf("\n");

    for (int sample = 0; sample < 20; ++sample) {
        for (int i = 0; i < 2000; ++i)
            pipe.tick();
        std::printf("%8llu",
                    static_cast<unsigned long long>(pipe.now()));
        for (ThreadID t = 0;
             t < static_cast<ThreadID>(benches.size()); ++t) {
            std::printf(" | %-8s %-5s %-4s", "",
                        dcra.isSlow(t) ? "slow" : "fast",
                        dcra.isGated(t) ? "YES" : "-");
            for (const ResourceType r : watched) {
                std::printf(" %3d/%-3d",
                            pipe.tracker().occupancy(r, t),
                            dcra.slowLimit(r));
            }
        }
        std::printf("\n");
    }

    std::printf("\nfinal: ");
    for (ThreadID t = 0; t < static_cast<ThreadID>(benches.size());
         ++t) {
        std::printf("%s ipc=%.3f  ", benches[t].c_str(),
                    pipe.stats().ipc(t));
    }
    std::printf("\n");
    return 0;
}
