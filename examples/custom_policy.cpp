/**
 * @file
 * Implementing your own resource allocation policy against the
 * library's Policy interface.
 *
 * The example policy, "BRT" (budgeted resource throttling), is a
 * simple illustration: every thread is statically entitled to
 * 1.5x its equal share of each resource, enforced as a fetch gate
 * (DCRA-style response action, SRA-style static input information).
 * It slots into the Simulator exactly like the built-in policies and
 * is compared against SRA and DCRA on a MIX workload.
 */

#include <cstdio>
#include <memory>

#include "policy/policy.hh"
#include "sim/simulator.hh"

namespace {

using namespace smt;

/** Fetch-gate each thread at 1.5x its equal share. */
class BudgetedThrottlePolicy : public Policy
{
  public:
    const char *name() const override { return "BRT"; }

    bool
    fetchAllowed(ThreadID t, Cycle now) override
    {
        (void)now;
        for (int r = 0; r < NumResourceTypes; ++r) {
            const auto rt = static_cast<ResourceType>(r);
            const int budget = 3 * ctx.cfg->resourceTotal(rt) /
                (2 * ctx.cfg->numThreads);
            if (ctx.tracker->occupancy(rt, t) > budget)
                return false;
        }
        return true;
    }
};

double
runWith(std::unique_ptr<Policy> policy, const char *label)
{
    SimConfig cfg;
    Simulator sim(cfg, {"gzip", "twolf", "bzip2", "mcf"},
                  std::move(policy));
    const SimResult r = sim.run(50'000, 50'000'000, 10'000);
    std::printf("%-6s throughput=%.3f ", label, r.throughput());
    for (const ThreadResult &t : r.threads)
        std::printf(" %s=%.3f", t.bench.c_str(), t.ipc);
    std::printf("\n");
    return r.throughput();
}

} // anonymous namespace

int
main()
{
    std::printf("custom policy vs built-ins on MIX4.g1 "
                "(gzip twolf bzip2 mcf)\n\n");
    runWith(std::make_unique<BudgetedThrottlePolicy>(), "BRT");
    PolicyParams pp;
    runWith(makePolicy(PolicyKind::Sra, pp), "SRA");
    runWith(makePolicy(PolicyKind::Dcra, pp), "DCRA");
    std::printf("\nsee src/policy/dcra.cc for the full-featured "
                "version of this pattern\n");
    return 0;
}
