#!/usr/bin/env sh
# Convenience wrapper around `smtsim sweep`: finds the smtsim binary
# in the usual build directories (or $SMT_BUILD_DIR) and forwards
# every argument. Examples:
#
#   tools/run_sweep.sh --cells ILP2,MEM2 --policies ICOUNT,DCRA
#   tools/run_sweep.sh --benches gzip+mcf --mem-latency 100,300 \
#       --format json --output sweep.json
#
# Long sweeps should journal their progress so a crash or Ctrl-C
# costs only the in-flight jobs. Run with --journal, and after an
# interruption re-run the SAME command plus --resume: completed jobs
# are replayed from the journal and the merged output is
# byte-identical to an uninterrupted run.
#
#   tools/run_sweep.sh --cells MEM2,MIX2 --policies ICOUNT,DCRA \
#       --journal sweep.journal --format json --output sweep.json
#   # ... Ctrl-C, crash, or SIGKILL ...
#   tools/run_sweep.sh --cells MEM2,MIX2 --policies ICOUNT,DCRA \
#       --journal sweep.journal --resume \
#       --format json --output sweep.json
#
# Add --isolate-jobs (optionally with --job-timeout/--job-retries)
# to contain a crashing or hanging job to a child process instead of
# losing the sweep.
#
# See `smtsim --help` for the full sweep flag list.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

smtsim=""
for dir in "${SMT_BUILD_DIR:-}" "$root/build" "$root/build-release" \
           "$root/build-shim"; do
    [ -n "$dir" ] && [ -x "$dir/smtsim" ] || continue
    smtsim="$dir/smtsim"
    break
done

if [ -z "$smtsim" ]; then
    echo "run_sweep.sh: no smtsim binary found; build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

exec "$smtsim" sweep "$@"
