/**
 * @file
 * smtsim: command-line driver for the simulator.
 *
 * Two modes:
 *
 *  - single run (default): one workload under one policy with the
 *    paper's baseline configuration (overridable); prints a full
 *    per-thread report, or the sweep JSON schema with --json.
 *  - `smtsim sweep`: a declarative grid of workloads x policies x
 *    config overrides executed in parallel across host cores by the
 *    runner subsystem (src/runner/), emitted as a table, CSV or
 *    JSON. Parallel output is bit-identical to --jobs 1.
 *
 * Examples:
 *   smtsim --workload gzip,mcf --policy DCRA
 *   smtsim --workload mcf,twolf,vpr,parser --policy FLUSH++ \
 *          --mem-latency 500 --l2-latency 25 --commits 200000
 *   smtsim --workload gzip,mcf --policy DCRA --json
 *   smtsim sweep --cells ILP2,MEM2 --policies ICOUNT,DCRA \
 *          --jobs 8 --format csv
 *   smtsim sweep --benches gzip+mcf,gzip+twolf --policies DCRA \
 *          --mem-latency 100,300,500 --format json
 *   smtsim --list-benchmarks
 */

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "alloc/chip_arbiters.hh"
#include "common/bits.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "prof/host_profiler.hh"
#include "prof/prof_report.hh"
#include "runner/result_sink.hh"
#include "runner/runner.hh"
#include "sim/simulator.hh"
#include "sim/workload.hh"
#include "soc/chip.hh"
#include "telemetry/telemetry.hh"
#include "trace/bench_profile.hh"

namespace {

using namespace smt;

void
usage()
{
    std::printf(
        "usage: smtsim [options]\n"
        "       smtsim sweep [sweep options]\n"
        "       smtsim prof-report [--top N] FILE.prof.ndjson...\n"
        "\n"
        "single-run options:\n"
        "  --workload a,b,c     comma-separated benchmarks (1-%d)\n"
        "  --policy NAME        ROUND-ROBIN ICOUNT STALL FLUSH\n"
        "                       FLUSH++ DG PDG SRA DCRA DCRA-DEG\n"
        "  --commits N          first-thread commit budget\n"
        "  --warmup N           warmup commits before measuring\n"
        "  --mem-latency N      main memory latency (cycles)\n"
        "  --l2-latency N       L2 access latency (cycles)\n"
        "  --regs N             physical registers per file\n"
        "  --iq N               entries per issue queue\n"
        "  --seed N             workload generation seed\n"
        "  --perfect-dcache     all data accesses hit L1\n"
        "  --cores N            SMT cores on the chip (default 1 =\n"
        "                       the paper's single-core machine)\n"
        "  --contexts N         hardware contexts per core in\n"
        "                       multi-core mode (default 4)\n"
        "  --allocator NAME     thread-to-core allocator:\n"
        "                       round-robin symbiosis synpa\n"
        "  --epoch N            cycles between reallocations\n"
        "                       (0 disables; default 20000)\n"
        "  --llc-arbiter NAME   chip-level LLC arbiter (multi-core):\n"
        "                       static chip-dcra way-equal way-util\n"
        "  --llc-ways N         LLC associativity (pow2, <= 32) for\n"
        "                       way-partitioning experiments\n"
        "  --chip-jobs N        host threads ticking the chip's\n"
        "                       cores (1 = serial, 0 = one per host\n"
        "                       thread); results are byte-identical\n"
        "                       for every value\n"
        "  --trace-out PREFIX   record telemetry, writing\n"
        "                       PREFIX.job0.ts.ndjson (time series)\n"
        "                       and PREFIX.job0.trace.json (Chrome\n"
        "                       trace, loadable in Perfetto)\n"
        "  --ts-out PREFIX      record the time series alone:\n"
        "                       PREFIX.job0.ts.ndjson, no event\n"
        "                       trace file\n"
        "  --stats-interval N   cycles between telemetry samples\n"
        "                       (default 10000; needs --trace-out\n"
        "                       or --ts-out)\n"
        "  --prof PREFIX        host wall-clock profiling: sampled\n"
        "                       stage/component attribution written\n"
        "                       to PREFIX.job0.prof.ndjson (host\n"
        "                       data, nondeterministic; simulation\n"
        "                       results stay byte-identical). With\n"
        "                       --trace-out, host spans are merged\n"
        "                       into the Perfetto trace\n"
        "  --prof-every N       host-time 1 in N ticks (default 64)\n"
        "  --json               emit the sweep JSON schema instead\n"
        "                       of the human report\n"
        "  --list-benchmarks    show available benchmarks\n"
        "  --list-workloads     show the paper's Table 4 workloads\n"
        "  --list-policies      show registered fetch/alloc policies\n"
        "  --list-arbiters      show registered LLC arbiters\n"
        "  --selftest           10k-cycle 2-thread DCRA smoke run\n"
        "                       plus a 2-core chip smoke; exits\n"
        "                       nonzero on NaN/zero IPC or\n"
        "                       nondeterminism\n"
        "\n"
        "sweep options (grid = workloads x policies x configs):\n"
        "  --benches a+b,c+d    ad-hoc workloads ('+' joins the\n"
        "                       threads of one workload)\n"
        "  --workloads id,...   paper Table 4 workload ids\n"
        "                       (e.g. MEM2.g1; see --list-workloads)\n"
        "  --cells MEM2,ILP4    all four groups of a workload cell\n"
        "  --policies A,B       policies to sweep (default\n"
        "                       ICOUNT,DCRA)\n"
        "  --mem-latency a,b    memory-latency axis (cycles)\n"
        "  --l2-latency a,b     L2-latency axis (cycles)\n"
        "  --regs a,b           register-file-size axis\n"
        "  --iq a,b             issue-queue-size axis\n"
        "  --cores a,b          chip-size axis (cores > 1 run on\n"
        "                       the CMP layer)\n"
        "  --allocator a,b      thread-to-core allocator axis\n"
        "  --llc-arbiter a,b    LLC-arbiter axis (multi-core)\n"
        "  --llc-ways a,b       LLC-associativity axis (multi-core)\n"
        "  --chip-jobs N        host threads per multi-core chip\n"
        "                       (byte-identical for every value)\n"
        "  --contexts N         contexts per core (multi-core)\n"
        "  --epoch N            reallocation epoch in cycles\n"
        "  --commits N          per-run commit budget (default\n"
        "                       60000)\n"
        "  --warmup N           warmup commits (default 10000)\n"
        "  --seed N             workload generation seed\n"
        "  --perfect-dcache     all data accesses hit L1\n"
        "  --no-hmean           skip single-thread baselines\n"
        "  --jobs N             worker threads (default: all host\n"
        "                       cores); results are identical for\n"
        "                       every N\n"
        "  --trace-out PREFIX   per-job telemetry sidecar files\n"
        "                       (PREFIX.job<i>.ts.ndjson and\n"
        "                       PREFIX.job<i>.trace.json, named by\n"
        "                       the deterministic job order); bumps\n"
        "                       the JSON schema to smtsim-sweep-v2\n"
        "  --ts-out PREFIX      per-job time series alone (no event\n"
        "                       trace files); also schema v2\n"
        "  --stats-interval N   cycles between telemetry samples\n"
        "                       (default 10000; needs --trace-out\n"
        "                       or --ts-out)\n"
        "  --prof PREFIX        host wall-clock profiling sidecars:\n"
        "                       PREFIX.job<i>.prof.ndjson per job\n"
        "                       plus PREFIX.runner.prof.ndjson\n"
        "                       (job wall/queue times, baseline-\n"
        "                       cache contention); deterministic\n"
        "                       outputs are unchanged\n"
        "  --prof-every N       host-time 1 in N ticks (default 64)\n"
        "  --format F           table | csv | json (default table)\n"
        "  --output FILE        write to FILE instead of stdout\n"
        "\n"
        "prof-report: aggregate one or more .prof.ndjson sidecars\n"
        "(from --prof) into a table: top host-time scopes, wavefront\n"
        "gate waits and per-worker utilization, job wall-time\n"
        "percentiles, baseline-cache contention. --top N limits the\n"
        "scope table (default 20).\n"
        "\n"
        "sweep fault tolerance (see README 'Fault tolerance'):\n"
        "  --journal FILE       append one durable NDJSON record per\n"
        "                       completed job (fsync'd); a fresh\n"
        "                       sweep truncates FILE first\n"
        "  --resume             replay completed jobs from --journal\n"
        "                       and run only the rest; merged output\n"
        "                       is byte-identical to an\n"
        "                       uninterrupted run\n"
        "  --isolate-jobs       fork each job into a child process\n"
        "                       so a crash loses one job, not the\n"
        "                       sweep\n"
        "  --job-timeout SEC    kill an isolated job after SEC\n"
        "                       seconds (needs --isolate-jobs)\n"
        "  --job-retries N      re-run a failed job up to N extra\n"
        "                       times with deterministic backoff\n"
        "  --job-backoff MS     base retry backoff in milliseconds\n"
        "                       (attempt k waits MS << (k-1);\n"
        "                       default 50)\n"
        "\n"
        "sweep exit codes: 0 success, 1 usage/config error, 3 sweep\n"
        "completed but jobs failed (see the JSON failures block),\n"
        "130 interrupted by SIGINT/SIGTERM (journal stays resumable)\n",
        maxThreads);
}

/**
 * Smoke mode wired into CTest: run a short 2-thread DCRA simulation
 * and sanity-check the results. Returns the process exit code.
 */
int
selftest()
{
    SimConfig cfg;
    cfg.seed = 0x5e1f;
    Simulator sim(cfg, {"gzip", "mcf"}, PolicyKind::Dcra);
    Pipeline &pipe = sim.pipeline();
    for (int i = 0; i < 10'000; ++i)
        pipe.tick();
    pipe.auditInvariants();

    const PipelineStats &ps = pipe.stats();
    bool ok = true;
    double throughput = 0.0;
    for (ThreadID t = 0; t < 2; ++t) {
        const double ipc = ps.ipc(t);
        if (std::isnan(ipc) || ipc <= 0.0) {
            std::fprintf(stderr,
                         // smtlint:allow(D2): diagnostic for a human; C locale is pinned (D1 bans setlocale)
                         "selftest: thread %d IPC %.4f is NaN/zero\n",
                         t, ipc);
            ok = false;
        }
        throughput += ipc;
    }
    if (ps.cycles != 10'000) {
        std::fprintf(stderr, "selftest: expected 10000 cycles, got "
                     "%llu\n",
                     static_cast<unsigned long long>(ps.cycles));
        ok = false;
    }

    // Second leg: a 2-core chip with an active allocator, so the
    // smoke mode covers the CMP layer (migrations included). Run it
    // twice: the chip must be bit-deterministic.
    SimConfig ccfg; // default seed: the migration-rich scenario
    ccfg.soc.numCores = 2;
    ccfg.soc.contextsPerCore = 2;
    ccfg.soc.allocator = AllocatorKind::Symbiosis;
    ccfg.soc.epochCycles = 700; // short: the smoke run must migrate
    ccfg.soc.drainTimeout = 200;
    // This order cold-spreads the two memory hogs onto one core
    // (mcf+art), which the symbiosis allocator then corrects — the
    // smoke run covers a real migration.
    const std::vector<std::string> chipMix = {"mcf", "gzip", "art",
                                              "crafty"};
    auto chipRun = [&]() {
        ChipSimulator chip(ccfg, chipMix, PolicyKind::Dcra);
        const SimResult r = chip.run(8'000, 200'000);
        chip.auditInvariants();
        return r;
    };
    const SimResult c1 = chipRun();
    const SimResult c2 = chipRun();
    // Third pass on two worker threads: the parallel tick path must
    // reproduce the serial bytes (this is also the TSan smoke).
    ccfg.soc.chipJobs = 2;
    const SimResult c3 = chipRun();
    ccfg.soc.chipJobs = 1;
    double chipTp = 0.0;
    for (const ThreadResult &t : c1.threads) {
        if (std::isnan(t.ipc) || t.ipc <= 0.0) {
            std::fprintf(stderr,
                         // smtlint:allow(D2): diagnostic for a human; C locale is pinned (D1 bans setlocale)
                         "selftest: chip thread %s IPC %.4f is "
                         "NaN/zero\n", t.bench.c_str(), t.ipc);
            ok = false;
        }
        chipTp += t.ipc;
    }
    if (c1.cycles != c2.cycles ||
        c1.coreCommitHashes != c2.coreCommitHashes ||
        c1.migrations != c2.migrations) {
        std::fprintf(stderr, "selftest: 2-core chip run is not "
                     "deterministic\n");
        ok = false;
    }
    if (c1.cycles != c3.cycles ||
        c1.coreCommitHashes != c3.coreCommitHashes ||
        c1.migrations != c3.migrations ||
        c1.llcAccesses != c3.llcAccesses) {
        std::fprintf(stderr, "selftest: --chip-jobs 2 diverged from "
                     "the serial 2-core run\n");
        ok = false;
    }
    if (c1.migrations == 0) {
        std::fprintf(stderr, "selftest: 2-core chip never "
                     "migrated a thread\n");
        ok = false;
    }
    // smtlint:allow(D2): human-facing selftest summary; C locale is pinned (D1 bans setlocale)
    std::printf("selftest: %s (throughput %.3f over %llu cycles; "
                "2-core chip %.3f over %llu cycles, %llu " // smtlint:allow(D2): same summary line
                "migrations)\n",
                ok ? "PASS" : "FAIL", throughput,
                static_cast<unsigned long long>(ps.cycles), chipTp,
                static_cast<unsigned long long>(c1.cycles),
                static_cast<unsigned long long>(c1.migrations));
    return ok ? 0 : 1;
}

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    return splitOn(s, ',');
}

/** How many software threads a chip shape can hold. */
struct ChipShape
{
    int cores = 1;
    int contexts = maxThreads; //!< per core

    int capacity() const { return cores * contexts; }
};

/**
 * Check a workload's benchmark list: nonempty, within the chip's
 * thread capacity (cores x contexts; a single core offers the
 * model's maxThreads contexts), every name known. Reports to stderr
 * and returns false on any problem, so callers can exit nonzero
 * instead of hitting fatal() (or undefined behaviour) deep inside
 * the simulator.
 */
bool
validateBenches(const std::vector<std::string> &benches,
                const ChipShape &shape)
{
    if (benches.empty() ||
        (benches.size() == 1 && benches[0].empty())) {
        std::fprintf(stderr, "error: empty workload\n");
        return false;
    }
    if (static_cast<int>(benches.size()) > shape.capacity()) {
        if (shape.cores > 1) {
            std::fprintf(stderr,
                         "error: workload has %zu benchmarks, "
                         "exceeding the chip's %d cores x %d "
                         "contexts = %d threads\n",
                         benches.size(), shape.cores, shape.contexts,
                         shape.capacity());
        } else {
            std::fprintf(stderr,
                         "error: workload has %zu benchmarks; the "
                         "model supports at most %d hardware "
                         "contexts (use --cores for more)\n",
                         benches.size(), shape.capacity());
        }
        return false;
    }
    const std::vector<std::string> &known = allBenchNames();
    for (const std::string &b : benches) {
        if (std::find(known.begin(), known.end(), b) == known.end()) {
            std::fprintf(stderr,
                         "error: unknown benchmark '%s' (run "
                         "'smtsim --list-benchmarks' for the list)\n",
                         b.c_str());
            return false;
        }
    }
    return true;
}

/** Validate an --llc-ways value; reports to stderr on rejection. */
bool
validateLlcWays(int n)
{
    if (n < 1 || n > 32 ||
        !isPow2(static_cast<std::uint64_t>(n))) {
        std::fprintf(stderr,
                     "error: --llc-ways wants a power of two in "
                     "1..32 (got %d); the LLC's set count must stay "
                     "a power of two\n",
                     n);
        return false;
    }
    return true;
}

/** Parse a comma list of non-negative integers; false on junk. */
bool
parseU64List(const std::string &s, std::vector<std::uint64_t> &out)
{
    for (const std::string &tok : splitCommas(s)) {
        if (tok.empty() ||
            tok.find_first_not_of("0123456789") != std::string::npos)
            return false;
        out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    }
    return !out.empty();
}

/**
 * Fail fast on an unwritable output path: probe with fopen(path,
 * "a") before the (possibly hours-long) sweep starts, removing the
 * probe file again when it did not exist before. Reports to stderr
 * and returns false on an unwritable path.
 */
bool
probeWritable(const std::string &path, const char *flag)
{
    if (path.empty())
        return true;
    struct stat st;
    const bool existed = ::stat(path.c_str(), &st) == 0;
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        std::fprintf(stderr,
                     "error: %s path '%s' is not writable: %s\n",
                     flag, path.c_str(), std::strerror(errno));
        return false;
    }
    std::fclose(f);
    if (!existed)
        std::remove(path.c_str());
    return true;
}

/** Emit to --output FILE or stdout. */
int
emitOutput(const std::string &text, const std::string &path)
{
    if (path.empty()) {
        std::fputs(text.c_str(), stdout);
        return 0;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                     path.c_str());
        return 1;
    }
    const bool wrote = std::fputs(text.c_str(), f) >= 0;
    // fclose flushes the buffered tail; a full disk surfaces here.
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        std::fprintf(stderr, "error: failed writing '%s'\n",
                     path.c_str());
        return 1;
    }
    return 0;
}

/** `smtsim sweep ...`: build a SweepSpec from the flags and run it. */
int
sweepMain(int argc, char **argv)
{
    SweepSpec spec;
    spec.name = "cli-sweep";
    spec.commits = 60'000;
    spec.warmup = 10'000;

    std::vector<std::uint64_t> memLats, l2Lats, regSizes, iqSizes;
    std::vector<std::uint64_t> coreCounts, llcWaysAxis;
    std::vector<AllocatorKind> allocKinds;
    std::vector<std::string> llcArbs;
    std::string format = "table";
    std::string outPath;
    int jobs = 0;
    std::uint64_t statsInterval = 0;
    RunnerOptions ropts;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--benches") {
            // Names and capacity are validated after the whole
            // command line is parsed: the thread capacity depends
            // on --cores/--contexts, which may come later.
            for (const std::string &spec_s : splitCommas(next())) {
                const std::vector<std::string> benches =
                    splitOn(spec_s, '+');
                if (benches.empty() ||
                    (benches.size() == 1 && benches[0].empty())) {
                    std::fprintf(stderr, "error: empty workload\n");
                    return 1;
                }
                spec.workloads.push_back(adHocWorkload(benches));
            }
        } else if (arg == "--workloads") {
            for (const std::string &id : splitCommas(next())) {
                const std::vector<Workload> &all = allWorkloads();
                auto it = std::find_if(
                    all.begin(), all.end(),
                    [&](const Workload &w) { return w.id == id; });
                if (it == all.end()) {
                    std::fprintf(stderr,
                                 "error: unknown workload id '%s' "
                                 "(run 'smtsim --list-workloads')\n",
                                 id.c_str());
                    return 1;
                }
                spec.workloads.push_back(*it);
            }
        } else if (arg == "--cells") {
            for (const std::string &cell : splitCommas(next())) {
                WorkloadType ty;
                if (cell.rfind("ILP", 0) == 0)
                    ty = WorkloadType::ILP;
                else if (cell.rfind("MIX", 0) == 0)
                    ty = WorkloadType::MIX;
                else if (cell.rfind("MEM", 0) == 0)
                    ty = WorkloadType::MEM;
                else {
                    std::fprintf(stderr,
                                 "error: bad cell '%s' (want e.g. "
                                 "ILP2, MIX3, MEM4)\n",
                                 cell.c_str());
                    return 1;
                }
                const int n = std::atoi(cell.c_str() + 3);
                const std::vector<Workload> group =
                    workloadsOf(n, ty);
                if (group.empty()) {
                    std::fprintf(stderr,
                                 "error: no workloads in cell '%s'\n",
                                 cell.c_str());
                    return 1;
                }
                spec.workloads.insert(spec.workloads.end(),
                                      group.begin(), group.end());
            }
        } else if (arg == "--policies") {
            for (const std::string &p : splitCommas(next()))
                spec.policies.push_back(parsePolicyKind(p));
        } else if (arg == "--mem-latency") {
            if (!parseU64List(next(), memLats))
                fatal("bad --mem-latency list");
        } else if (arg == "--l2-latency") {
            if (!parseU64List(next(), l2Lats))
                fatal("bad --l2-latency list");
        } else if (arg == "--regs") {
            if (!parseU64List(next(), regSizes))
                fatal("bad --regs list");
        } else if (arg == "--iq") {
            if (!parseU64List(next(), iqSizes))
                fatal("bad --iq list");
        } else if (arg == "--cores") {
            if (!parseU64List(next(), coreCounts))
                fatal("bad --cores list");
        } else if (arg == "--allocator") {
            for (const std::string &a : splitCommas(next()))
                allocKinds.push_back(parseAllocatorKind(a));
        } else if (arg == "--llc-arbiter") {
            for (const std::string &a : splitCommas(next())) {
                if (!isLlcArbiterName(a)) {
                    std::fprintf(stderr,
                                 "error: unknown LLC arbiter '%s' "
                                 "(run 'smtsim --list-arbiters')\n",
                                 a.c_str());
                    return 1;
                }
                llcArbs.push_back(a);
            }
        } else if (arg == "--llc-ways") {
            std::vector<std::uint64_t> ways;
            if (!parseU64List(next(), ways))
                fatal("bad --llc-ways list");
            for (const std::uint64_t w : ways) {
                if (!validateLlcWays(static_cast<int>(w)))
                    return 1;
                llcWaysAxis.push_back(w);
            }
        } else if (arg == "--contexts") {
            const int n =
                static_cast<int>(std::strtol(next(), nullptr, 10));
            if (n < 1 || n > maxThreads) {
                std::fprintf(stderr,
                             "error: --contexts wants 1..%d\n",
                             maxThreads);
                return 1;
            }
            spec.base.soc.contextsPerCore = n;
        } else if (arg == "--epoch") {
            spec.base.soc.epochCycles =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--commits") {
            spec.commits = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            spec.warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            spec.base.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--perfect-dcache") {
            spec.base.mem.perfectDcache = true;
        } else if (arg == "--no-hmean") {
            spec.computeHmean = false;
        } else if (arg == "--chip-jobs") {
            const int n =
                static_cast<int>(std::strtol(next(), nullptr, 10));
            if (n < 0) {
                std::fprintf(stderr,
                             "error: --chip-jobs wants N >= 0 "
                             "(0 = one per host thread)\n");
                return 1;
            }
            spec.base.soc.chipJobs = n;
        } else if (arg == "--jobs") {
            jobs = static_cast<int>(
                std::strtol(next(), nullptr, 10));
            if (jobs < 1) {
                std::fprintf(stderr, "error: --jobs wants N >= 1\n");
                return 1;
            }
        } else if (arg == "--trace-out") {
            spec.telemetry.tracePrefix = next();
        } else if (arg == "--ts-out") {
            spec.telemetry.tsPrefix = next();
        } else if (arg == "--prof") {
            spec.prof.prefix = next();
        } else if (arg == "--prof-every") {
            spec.prof.sampleEvery =
                std::strtoull(next(), nullptr, 10);
            if (spec.prof.sampleEvery < 1) {
                std::fprintf(stderr,
                             "error: --prof-every wants N >= 1\n");
                return 1;
            }
        } else if (arg == "--stats-interval") {
            statsInterval = std::strtoull(next(), nullptr, 10);
            if (statsInterval < 1) {
                std::fprintf(stderr,
                             "error: --stats-interval wants N >= 1\n");
                return 1;
            }
        } else if (arg == "--format") {
            format = next();
        } else if (arg == "--output") {
            outPath = next();
        } else if (arg == "--journal") {
            ropts.journalPath = next();
        } else if (arg == "--resume") {
            ropts.resume = true;
        } else if (arg == "--isolate-jobs") {
            ropts.exec.isolate = true;
        } else if (arg == "--job-timeout") {
            ropts.exec.timeoutSec =
                static_cast<int>(std::strtol(next(), nullptr, 10));
            if (ropts.exec.timeoutSec < 1) {
                std::fprintf(stderr,
                             "error: --job-timeout wants N >= 1 "
                             "seconds\n");
                return 1;
            }
        } else if (arg == "--job-retries") {
            ropts.exec.retries =
                static_cast<int>(std::strtol(next(), nullptr, 10));
            if (ropts.exec.retries < 0) {
                std::fprintf(stderr,
                             "error: --job-retries wants N >= 0\n");
                return 1;
            }
        } else if (arg == "--job-backoff") {
            ropts.exec.backoffMs =
                static_cast<int>(std::strtol(next(), nullptr, 10));
            if (ropts.exec.backoffMs < 0) {
                std::fprintf(stderr,
                             "error: --job-backoff wants N >= 0 "
                             "milliseconds\n");
                return 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown sweep option '%s'\n",
                         arg.c_str());
            usage();
            return 1;
        }
    }

    if (ropts.resume && ropts.journalPath.empty()) {
        std::fprintf(stderr, "error: --resume needs --journal (the "
                     "file to replay)\n");
        return 1;
    }
    if (ropts.exec.timeoutSec > 0 && !ropts.exec.isolate) {
        std::fprintf(stderr, "error: --job-timeout needs "
                     "--isolate-jobs (only a child process can be "
                     "killed without losing the sweep)\n");
        return 1;
    }
    ropts.faults = FaultPlan::fromEnv();

    if (statsInterval > 0 && !spec.telemetry.enabled()) {
        std::fprintf(stderr, "error: --stats-interval needs "
                     "--trace-out or --ts-out (nowhere to write "
                     "samples)\n");
        return 1;
    }
    if (spec.telemetry.enabled())
        spec.telemetry.statsInterval =
            statsInterval ? statsInterval : 10'000;

    if (spec.workloads.empty()) {
        std::fprintf(stderr,
                     "error: no workloads; give --benches, "
                     "--workloads and/or --cells\n");
        return 1;
    }
    if (spec.policies.empty())
        spec.policies = {PolicyKind::Icount, PolicyKind::Dcra};

    // Every workload must fit every chip in the sweep. Capacity is
    // not monotonic in the core count: one core offers maxThreads
    // contexts, while a multi-core chip offers cores x --contexts —
    // so validate against the tightest shape on the axis, not just
    // the smallest core count.
    ChipShape shape;
    bool haveShape = false;
    for (const std::uint64_t c : coreCounts) {
        if (c < 1) {
            std::fprintf(stderr, "error: --cores wants N >= 1\n");
            return 1;
        }
        ChipShape cand; // c == 1: the single-core default shape
        if (c > 1) {
            cand.cores = static_cast<int>(c);
            cand.contexts = spec.base.soc.contextsPerCore;
        }
        if (!haveShape || cand.capacity() < shape.capacity()) {
            shape = cand;
            haveShape = true;
        }
    }
    for (const Workload &w : spec.workloads) {
        if (!validateBenches(w.benches, shape))
            return 1;
    }

    const std::unique_ptr<ResultSink> sink = makeSink(format);
    if (!sink) {
        std::fprintf(stderr,
                     "error: unknown format '%s' (table, csv, "
                     "json)\n",
                     format.c_str());
        return 1;
    }

    // Cross product of the explicitly given config axes; an axis the
    // user omitted contributes no label and no override.
    auto axis = [](const std::vector<std::uint64_t> &v) {
        return v.empty() ? std::vector<std::uint64_t>{0} : v;
    };
    const std::vector<AllocatorKind> allocAxis = allocKinds.empty()
        ? std::vector<AllocatorKind>{AllocatorKind::RoundRobin}
        : allocKinds;
    const std::vector<std::string> arbAxis = llcArbs.empty()
        ? std::vector<std::string>{"static"}
        : llcArbs;
    for (const std::uint64_t nc : axis(coreCounts)) {
     for (const AllocatorKind ak : allocAxis) {
      for (const std::string &la : arbAxis) {
       for (const std::uint64_t lw : axis(llcWaysAxis)) {
        for (const std::uint64_t ml : axis(memLats)) {
          for (const std::uint64_t l2 : axis(l2Lats)) {
            for (const std::uint64_t rg : axis(regSizes)) {
                for (const std::uint64_t iq : axis(iqSizes)) {
                    ConfigOverride o;
                    auto addPart = [&](const char *k,
                                       std::uint64_t v) {
                        if (!o.label.empty())
                            o.label += ',';
                        o.label += k;
                        o.label += '=';
                        o.label += std::to_string(v);
                    };
                    auto addName = [&](const char *k,
                                       const std::string &v) {
                        if (!o.label.empty())
                            o.label += ',';
                        o.label += k;
                        o.label += '=';
                        o.label += v;
                    };
                    if (!coreCounts.empty()) {
                        o.numCores = static_cast<int>(nc);
                        addPart("cores", nc);
                    }
                    if (!allocKinds.empty()) {
                        o.allocator = ak;
                        addName("alloc", allocatorKindName(ak));
                    }
                    if (!llcArbs.empty()) {
                        o.llcArbiter = la;
                        addName("llcarb", la);
                    }
                    if (!llcWaysAxis.empty()) {
                        o.llcWays = static_cast<int>(lw);
                        addPart("llcways", lw);
                    }
                    if (!memLats.empty()) {
                        o.memLatency = ml;
                        addPart("mem", ml);
                    }
                    if (!l2Lats.empty()) {
                        o.l2Latency = l2;
                        addPart("l2", l2);
                    }
                    if (!regSizes.empty()) {
                        o.physRegsPerFile = static_cast<int>(rg);
                        addPart("regs", rg);
                    }
                    if (!iqSizes.empty()) {
                        o.iqSize = static_cast<int>(iq);
                        addPart("iq", iq);
                    }
                    if (!o.label.empty())
                        spec.configs.push_back(std::move(o));
                }
            }
          }
        }
       }
      }
     }
    }

    // Fail fast on unwritable destinations before hours of
    // simulation, not after.
    if (!probeWritable(outPath, "--output") ||
        !probeWritable(ropts.journalPath, "--journal"))
        return 1;
    if (spec.telemetry.enabled() &&
        !probeWritable(
            telemetryFileBase(spec.telemetry.tsOutPrefix(), 0) +
                ".ts.ndjson",
            spec.telemetry.tsPrefix.empty() ? "--trace-out"
                                            : "--ts-out"))
        return 1;
    if (spec.prof.enabled() &&
        !probeWritable(profFileBase(spec.prof.prefix, 0) +
                           ".prof.ndjson",
                       "--prof"))
        return 1;

    SweepRunner runner(std::move(spec), jobs, nullptr,
                       std::move(ropts));
    const SweepResults results = runner.run();
    if (results.interrupted) {
        std::fprintf(stderr,
                     "sweep interrupted; completed jobs are in the "
                     "journal — re-run with --resume to finish\n");
        return 130;
    }
    const int rc = emitOutput(sink->render(results), outPath);
    if (rc)
        return rc;
    if (!results.failures.empty()) {
        std::fprintf(stderr,
                     "sweep completed with %zu failed job(s); see "
                     "the failures block (--format json)\n",
                     results.failures.size());
        return 3;
    }
    return 0;
}

/** `smtsim prof-report FILE...`: aggregate --prof sidecars. */
int
profReportMain(int argc, char **argv)
{
    ProfReportOptions opts;
    std::vector<std::string> paths;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top") {
            if (i + 1 >= argc)
                fatal("missing value for --top");
            opts.topScopes = static_cast<int>(
                std::strtol(argv[++i], nullptr, 10));
            if (opts.topScopes < 1) {
                std::fprintf(stderr,
                             "error: --top wants N >= 1\n");
                return 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "unknown prof-report option '%s'\n",
                         arg.c_str());
            usage();
            return 1;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "error: prof-report wants at least one "
                     ".prof.ndjson file (from --prof)\n");
        return 1;
    }
    std::string out;
    std::string err;
    if (!renderProfReport(paths, opts, out, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }
    std::fputs(out.c_str(), stdout);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
        return sweepMain(argc - 2, argv + 2);
    if (argc > 1 && std::strcmp(argv[1], "prof-report") == 0)
        return profReportMain(argc - 2, argv + 2);

    std::vector<std::string> workload = {"gzip", "twolf"};
    PolicyKind policy = PolicyKind::Dcra;
    std::uint64_t commits = 100'000;
    std::uint64_t warmup = 10'000;
    bool jsonOut = false;
    std::string traceOut;
    std::string tsOut;
    std::string profOut;
    std::uint64_t profEvery = 64;
    std::uint64_t statsInterval = 0;
    SimConfig cfg;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = splitCommas(next());
        } else if (arg == "--policy") {
            policy = parsePolicyKind(next());
        } else if (arg == "--commits") {
            commits = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--mem-latency") {
            cfg.mem.memLatency = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--l2-latency") {
            cfg.mem.l2Latency = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--regs") {
            cfg.core.physRegsPerFile =
                static_cast<int>(std::strtol(next(), nullptr, 10));
        } else if (arg == "--iq") {
            const int n =
                static_cast<int>(std::strtol(next(), nullptr, 10));
            for (int q = 0; q < numQueueClasses; ++q)
                cfg.core.iqSize[q] = n;
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--perfect-dcache") {
            cfg.mem.perfectDcache = true;
        } else if (arg == "--cores") {
            cfg.soc.numCores =
                static_cast<int>(std::strtol(next(), nullptr, 10));
            if (cfg.soc.numCores < 1) {
                std::fprintf(stderr, "error: --cores wants N >= 1\n");
                return 1;
            }
        } else if (arg == "--contexts") {
            cfg.soc.contextsPerCore =
                static_cast<int>(std::strtol(next(), nullptr, 10));
            if (cfg.soc.contextsPerCore < 1 ||
                cfg.soc.contextsPerCore > maxThreads) {
                std::fprintf(stderr,
                             "error: --contexts wants 1..%d\n",
                             maxThreads);
                return 1;
            }
        } else if (arg == "--allocator") {
            cfg.soc.allocator = parseAllocatorKind(next());
        } else if (arg == "--epoch") {
            cfg.soc.epochCycles =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--llc-arbiter") {
            cfg.soc.llcArbiter = next();
            if (!isLlcArbiterName(cfg.soc.llcArbiter)) {
                std::fprintf(stderr,
                             "error: unknown LLC arbiter '%s' (run "
                             "'smtsim --list-arbiters')\n",
                             cfg.soc.llcArbiter.c_str());
                return 1;
            }
        } else if (arg == "--llc-ways") {
            cfg.soc.llcWays =
                static_cast<int>(std::strtol(next(), nullptr, 10));
            if (!validateLlcWays(cfg.soc.llcWays))
                return 1;
        } else if (arg == "--chip-jobs") {
            cfg.soc.chipJobs =
                static_cast<int>(std::strtol(next(), nullptr, 10));
            if (cfg.soc.chipJobs < 0) {
                std::fprintf(stderr,
                             "error: --chip-jobs wants N >= 0 "
                             "(0 = one per host thread)\n");
                return 1;
            }
        } else if (arg == "--trace-out") {
            traceOut = next();
        } else if (arg == "--ts-out") {
            tsOut = next();
        } else if (arg == "--prof") {
            profOut = next();
        } else if (arg == "--prof-every") {
            profEvery = std::strtoull(next(), nullptr, 10);
            if (profEvery < 1) {
                std::fprintf(stderr,
                             "error: --prof-every wants N >= 1\n");
                return 1;
            }
        } else if (arg == "--stats-interval") {
            statsInterval = std::strtoull(next(), nullptr, 10);
            if (statsInterval < 1) {
                std::fprintf(stderr,
                             "error: --stats-interval wants N >= 1\n");
                return 1;
            }
        } else if (arg == "--json") {
            jsonOut = true;
        } else if (arg == "--list-benchmarks") {
            for (const auto &b : allBenchNames()) {
                const BenchProfile &p = benchProfile(b);
                // smtlint:allow(D2): human-facing table; C locale is pinned (D1 bans setlocale)
                std::printf("%-8s %s  %s  (paper L2 miss %.1f%%)\n",
                            b.c_str(), p.isFp ? "FP " : "INT",
                            isMemBench(b) ? "MEM" : "ILP",
                            p.paperL2MissRate);
            }
            return 0;
        } else if (arg == "--list-workloads") {
            for (const Workload &w : allWorkloads()) {
                std::printf("%-8s", w.id.c_str());
                for (const auto &b : w.benches)
                    std::printf(" %s", b.c_str());
                std::printf("\n");
            }
            return 0;
        } else if (arg == "--list-policies") {
            for (const char *n : policyNames())
                std::printf("%s\n", n);
            return 0;
        } else if (arg == "--list-arbiters") {
            for (const char *n : llcArbiterNames())
                std::printf("%s\n", n);
            return 0;
        } else if (arg == "--selftest") {
            return selftest();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 1;
        }
    }

    ChipShape shape;
    if (cfg.soc.numCores > 1) {
        shape.cores = cfg.soc.numCores;
        shape.contexts = cfg.soc.contextsPerCore;
    }
    if (!validateBenches(workload, shape))
        return 1;

    if (statsInterval > 0 && traceOut.empty() && tsOut.empty()) {
        std::fprintf(stderr, "error: --stats-interval needs "
                     "--trace-out or --ts-out (nowhere to write "
                     "samples)\n");
        return 1;
    }
    const Cycle interval = statsInterval ? statsInterval : 10'000;
    const std::string tsOutPrefix = tsOut.empty() ? traceOut : tsOut;
    if (!tsOutPrefix.empty() &&
        !probeWritable(telemetryFileBase(tsOutPrefix, 0) +
                           ".ts.ndjson",
                       tsOut.empty() ? "--trace-out" : "--ts-out"))
        return 1;
    if (!profOut.empty() &&
        !probeWritable(profFileBase(profOut, 0) + ".prof.ndjson",
                       "--prof"))
        return 1;

    if (jsonOut) {
        // A single run is a one-job sweep; the runner gives it the
        // exact same JSON schema a sweep emits (telemetry and host
        // profiling included: the sidecar files are PREFIX.job0.*).
        SweepSpec spec;
        spec.name = "cli-run";
        spec.base = cfg;
        spec.commits = commits;
        spec.warmup = warmup;
        spec.maxCycles = 100'000'000;
        spec.computeHmean = false;
        spec.workloads = {adHocWorkload(workload)};
        spec.policies = {policy};
        spec.telemetry.tracePrefix = traceOut;
        spec.telemetry.tsPrefix = tsOut;
        if (spec.telemetry.enabled())
            spec.telemetry.statsInterval = interval;
        spec.prof.prefix = profOut;
        spec.prof.sampleEvery = profEvery;
        SweepRunner runner(std::move(spec), 1);
        const SweepResults results = runner.run();
        return emitOutput(JsonSink().render(results), "");
    }

    std::unique_ptr<TelemetryHub> hub;
    if (!tsOutPrefix.empty())
        hub = std::make_unique<TelemetryHub>(interval);
    std::unique_ptr<HostProfiler> hprof;
    if (!profOut.empty()) {
        hprof = std::make_unique<HostProfiler>(profEvery);
        hprof->enableSpans(!traceOut.empty());
    }
    const std::uint64_t runT0 = hprof ? hprof->nowNs() : 0;

    SimResult r;
    if (cfg.soc.numCores > 1) {
        ChipSimulator chip(cfg, workload, policy);
        if (hub)
            chip.setTelemetry(hub.get());
        if (hprof)
            chip.setHostProfiler(hprof.get());
        r = chip.run(commits, 100'000'000, warmup);
    } else {
        Simulator sim(cfg, workload, policy);
        if (hub)
            sim.setTelemetry(hub.get());
        if (hprof)
            sim.setHostProfiler(hprof.get());
        r = sim.run(commits, 100'000'000, warmup);
    }
    if (hprof) {
        hprof->record("{\"type\": \"run\", \"wallNs\": " +
                      fmtU64(hprof->nowNs() - runT0) + "}");
        if (!writeHostProfile(*hprof, profFileBase(profOut, 0),
                              "job0"))
            return 1;
        std::printf("prof: %zu scopes, %zu records, %zu spans -> "
                    "%s.job0.prof.ndjson (host wall-clock; "
                    "nondeterministic)\n",
                    hprof->scopeCount(), hprof->recordCount(),
                    hprof->spanCount(), profOut.c_str());
    }
    if (hub) {
        if (!writeTelemetryFiles(
                *hub, telemetryFileBase(tsOutPrefix, 0),
                traceOut.empty()
                    ? std::string()
                    : telemetryFileBase(traceOut, 0),
                hprof ? hprof->chromeTraceEvents() : std::string()))
            return 1;
        if (traceOut.empty()) {
            std::printf("telemetry: %zu samples -> "
                        "%s.job0.ts.ndjson\n",
                        hub->sampleCount(), tsOut.c_str());
        } else if (tsOut.empty()) {
            std::printf("telemetry: %zu samples, %zu events -> "
                        "%s.job0.{ts.ndjson,trace.json}\n",
                        hub->sampleCount(), hub->eventCount(),
                        traceOut.c_str());
        } else {
            std::printf("telemetry: %zu samples, %zu events -> "
                        "%s.job0.ts.ndjson, %s.job0.trace.json\n",
                        hub->sampleCount(), hub->eventCount(),
                        tsOut.c_str(), traceOut.c_str());
        }
    }

    // smtlint:allow(D2): width-padded human report; C locale is pinned (D1 bans setlocale)
    std::printf("policy=%s cycles=%llu throughput=%.3f mlp=%.2f\n",
                policyKindName(policy),
                static_cast<unsigned long long>(r.cycles),
                r.throughput(), r.mlpBusyMean);
    if (cfg.soc.numCores > 1) {
        const double llcMissPct = r.llcAccesses
            ? 100.0 * static_cast<double>(r.llcMisses) /
                static_cast<double>(r.llcAccesses)
            : 0.0;
        std::printf("chip: cores=%d contexts=%d allocator=%s "
                    "epoch=%llu migrations=%llu llc-acc=%llu "
                    // smtlint:allow(D2): width-padded human report; C locale is pinned (D1 bans setlocale)
                    "llc-miss=%.2f%% llc-arbiter=%s "
                    "share-reassignments=%llu\n",
                    cfg.soc.numCores, cfg.soc.contextsPerCore,
                    allocatorKindName(cfg.soc.allocator),
                    static_cast<unsigned long long>(
                        cfg.soc.epochCycles),
                    static_cast<unsigned long long>(r.migrations),
                    static_cast<unsigned long long>(r.llcAccesses),
                    llcMissPct, r.llcArbiter.c_str(),
                    static_cast<unsigned long long>(
                        r.llcShareReassignments));
        for (std::size_t c = 0; c < r.llcPerCore.size(); ++c) {
            const LlcCoreStats &cs = r.llcPerCore[c];
            std::printf("  llc core %zu: acc=%llu miss=%llu "
                        "mshr-share=%d ways=%d lines=%llu\n",
                        c,
                        static_cast<unsigned long long>(cs.accesses),
                        static_cast<unsigned long long>(cs.misses),
                        cs.mshrShare, cs.ways,
                        static_cast<unsigned long long>(
                            cs.linesOwned));
        }
    }
    std::printf("%-8s %10s %7s %9s %9s %8s %8s %8s %8s\n", "thread",
                "commits", "IPC", "fetched", "squashed", "misp%",
                "L1D%", "L2%", "flushes");
    for (const ThreadResult &t : r.threads) {
        const double mispPct = t.condBranches
            ? 100.0 * static_cast<double>(t.mispredicts) /
                static_cast<double>(t.condBranches)
            : 0.0;
        const double l1Pct = t.l1dAccesses
            ? 100.0 * static_cast<double>(t.l1dMisses) /
                static_cast<double>(t.l1dAccesses)
            : 0.0;
        // smtlint:allow(D2): width-padded human report; C locale is pinned (D1 bans setlocale)
        std::printf("%-8s %10llu %7.3f %9llu %9llu %7.2f%% %7.2f%% "
                    "%7.2f%% %8llu\n", // smtlint:allow(D2): same report row
                    t.bench.c_str(),
                    static_cast<unsigned long long>(t.committed),
                    t.ipc,
                    static_cast<unsigned long long>(t.fetched),
                    static_cast<unsigned long long>(t.squashed),
                    mispPct, l1Pct, t.l2MissRatePct(),
                    static_cast<unsigned long long>(t.flushes));
    }
    std::printf("phase mix (cycles with n slow threads):");
    for (std::size_t n = 0; n < r.slowPhaseCycles.size(); ++n) {
        // smtlint:allow(D2): width-padded human report; C locale is pinned (D1 bans setlocale)
        std::printf(" %zu-slow=%.1f%%", n,
                    100.0 *
                        static_cast<double>(r.slowPhaseCycles[n]) /
                        static_cast<double>(r.cycles));
    }
    std::printf("\n");
    return 0;
}
