/**
 * @file
 * smtsim: command-line driver for the simulator. Runs an arbitrary
 * workload under any policy with the paper's baseline configuration
 * (overridable) and prints a full per-thread report.
 *
 * Examples:
 *   smtsim --workload gzip,mcf --policy DCRA
 *   smtsim --workload mcf,twolf,vpr,parser --policy FLUSH++ \
 *          --mem-latency 500 --l2-latency 25 --commits 200000
 *   smtsim --list-benchmarks
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "sim/workload.hh"
#include "trace/bench_profile.hh"

namespace {

using namespace smt;

void
usage()
{
    std::printf(
        "usage: smtsim [options]\n"
        "  --workload a,b,c     comma-separated benchmarks (1-%d)\n"
        "  --policy NAME        ROUND-ROBIN ICOUNT STALL FLUSH\n"
        "                       FLUSH++ DG PDG SRA DCRA DCRA-DEG\n"
        "  --commits N          first-thread commit budget\n"
        "  --warmup N           warmup commits before measuring\n"
        "  --mem-latency N      main memory latency (cycles)\n"
        "  --l2-latency N       L2 access latency (cycles)\n"
        "  --regs N             physical registers per file\n"
        "  --iq N               entries per issue queue\n"
        "  --seed N             workload generation seed\n"
        "  --perfect-dcache     all data accesses hit L1\n"
        "  --list-benchmarks    show available benchmarks\n"
        "  --list-workloads     show the paper's Table 4 workloads\n"
        "  --selftest           10k-cycle 2-thread DCRA smoke run;\n"
        "                       exits nonzero on NaN or zero IPC\n",
        maxThreads);
}

/**
 * Smoke mode wired into CTest: run a short 2-thread DCRA simulation
 * and sanity-check the results. Returns the process exit code.
 */
int
selftest()
{
    SimConfig cfg;
    cfg.seed = 0x5e1f;
    Simulator sim(cfg, {"gzip", "mcf"}, PolicyKind::Dcra);
    Pipeline &pipe = sim.pipeline();
    for (int i = 0; i < 10'000; ++i)
        pipe.tick();
    pipe.auditInvariants();

    const PipelineStats &ps = pipe.stats();
    bool ok = true;
    double throughput = 0.0;
    for (ThreadID t = 0; t < 2; ++t) {
        const double ipc = ps.ipc(t);
        if (std::isnan(ipc) || ipc <= 0.0) {
            std::fprintf(stderr,
                         "selftest: thread %d IPC %.4f is NaN/zero\n",
                         t, ipc);
            ok = false;
        }
        throughput += ipc;
    }
    if (ps.cycles != 10'000) {
        std::fprintf(stderr, "selftest: expected 10000 cycles, got "
                     "%llu\n",
                     static_cast<unsigned long long>(ps.cycles));
        ok = false;
    }
    std::printf("selftest: %s (throughput %.3f over %llu cycles)\n",
                ok ? "PASS" : "FAIL", throughput,
                static_cast<unsigned long long>(ps.cycles));
    return ok ? 0 : 1;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> workload = {"gzip", "twolf"};
    PolicyKind policy = PolicyKind::Dcra;
    std::uint64_t commits = 100'000;
    std::uint64_t warmup = 10'000;
    SimConfig cfg;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = splitCommas(next());
        } else if (arg == "--policy") {
            policy = parsePolicyKind(next());
        } else if (arg == "--commits") {
            commits = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--mem-latency") {
            cfg.mem.memLatency = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--l2-latency") {
            cfg.mem.l2Latency = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--regs") {
            cfg.core.physRegsPerFile =
                static_cast<int>(std::strtol(next(), nullptr, 10));
        } else if (arg == "--iq") {
            const int n =
                static_cast<int>(std::strtol(next(), nullptr, 10));
            for (int q = 0; q < numQueueClasses; ++q)
                cfg.core.iqSize[q] = n;
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--perfect-dcache") {
            cfg.mem.perfectDcache = true;
        } else if (arg == "--list-benchmarks") {
            for (const auto &b : allBenchNames()) {
                const BenchProfile &p = benchProfile(b);
                std::printf("%-8s %s  %s  (paper L2 miss %.1f%%)\n",
                            b.c_str(), p.isFp ? "FP " : "INT",
                            isMemBench(b) ? "MEM" : "ILP",
                            p.paperL2MissRate);
            }
            return 0;
        } else if (arg == "--list-workloads") {
            for (const Workload &w : allWorkloads()) {
                std::printf("%-8s", w.id.c_str());
                for (const auto &b : w.benches)
                    std::printf(" %s", b.c_str());
                std::printf("\n");
            }
            return 0;
        } else if (arg == "--selftest") {
            return selftest();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 1;
        }
    }

    Simulator sim(cfg, workload, policy);
    const SimResult r = sim.run(commits, 100'000'000, warmup);

    std::printf("policy=%s cycles=%llu throughput=%.3f mlp=%.2f\n",
                policyKindName(policy),
                static_cast<unsigned long long>(r.cycles),
                r.throughput(), r.mlpBusyMean);
    std::printf("%-8s %10s %7s %9s %9s %8s %8s %8s %8s\n", "thread",
                "commits", "IPC", "fetched", "squashed", "misp%",
                "L1D%", "L2%", "flushes");
    for (const ThreadResult &t : r.threads) {
        const double mispPct = t.condBranches
            ? 100.0 * static_cast<double>(t.mispredicts) /
                static_cast<double>(t.condBranches)
            : 0.0;
        const double l1Pct = t.l1dAccesses
            ? 100.0 * static_cast<double>(t.l1dMisses) /
                static_cast<double>(t.l1dAccesses)
            : 0.0;
        std::printf("%-8s %10llu %7.3f %9llu %9llu %7.2f%% %7.2f%% "
                    "%7.2f%% %8llu\n",
                    t.bench.c_str(),
                    static_cast<unsigned long long>(t.committed),
                    t.ipc,
                    static_cast<unsigned long long>(t.fetched),
                    static_cast<unsigned long long>(t.squashed),
                    mispPct, l1Pct, t.l2MissRatePct(),
                    static_cast<unsigned long long>(t.flushes));
    }
    std::printf("phase mix (cycles with n slow threads):");
    for (std::size_t n = 0; n < r.slowPhaseCycles.size(); ++n) {
        std::printf(" %zu-slow=%.1f%%", n,
                    100.0 *
                        static_cast<double>(r.slowPhaseCycles[n]) /
                        static_cast<double>(r.cycles));
    }
    std::printf("\n");
    return 0;
}
