#!/usr/bin/env sh
# Convenience wrapper around bench_perf_throughput: finds the binary
# in the usual build directories (or $SMT_BUILD_DIR), defaults the
# output file to BENCH_perf.json in the current directory, and
# forwards every argument. The cells cover the 1/2/4-thread
# single-core mixes plus two 2-core x 2-thread CMP cells: 2C4T
# (static LLC arbiter) and 2C4T-DCRA (chip-dcra LLC arbitration).
# The "mcycles_per_sec_4t" aggregate tracks the single-core hot
# path only, so it stays comparable across PRs;
# "mcycles_per_sec_2c4t" tracks the chip layer's own cost (static
# arbiter only, comparable since PR 4) and
# "mcycles_per_sec_2c4t_chipdcra" the arbitration hot path.
# Examples:
#
#   tools/run_perf.sh --quick
#   tools/run_perf.sh --label after --baseline BENCH_before.json
#
# Only Release builds are accepted: the binary's baked-in build type
# (src/common/version.hh, printed by --build-info) is asserted before
# anything runs, because a Debug number silently committed to
# BENCH_perf.json would poison the perf trajectory. Set
# SMT_PERF_ALLOW_ANY_BUILD=1 to bypass the check (local
# experimentation only).
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

bench=""
for dir in "${SMT_BUILD_DIR:-}" "$root/build" "$root/build-release" \
           "$root/build-shim"; do
    [ -n "$dir" ] && [ -x "$dir/bench_perf_throughput" ] || continue
    bench="$dir/bench_perf_throughput"
    break
done

if [ -z "$bench" ]; then
    echo "run_perf.sh: no bench_perf_throughput binary found;" >&2
    echo "build first (Release required):" >&2
    echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release" >&2
    echo "  cmake --build build -j" >&2
    exit 1
fi

build_type=$("$bench" --build-info | sed -n 's/^build_type=//p')
if [ "$build_type" != "Release" ] &&
   [ "${SMT_PERF_ALLOW_ANY_BUILD:-0}" != "1" ]; then
    echo "run_perf.sh: '$bench' is a '${build_type:-unknown}'" \
         "build, not Release; perf numbers from it would be" \
         "meaningless." >&2
    echo "Rebuild with:" >&2
    echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release" >&2
    echo "  cmake --build build -j" >&2
    echo "(or set SMT_PERF_ALLOW_ANY_BUILD=1 to override)" >&2
    exit 1
fi

# Default the output file unless the caller already chose one.
has_output=0
for arg in "$@"; do
    [ "$arg" = "--output" ] && has_output=1
done

if [ "$has_output" = 1 ]; then
    exec "$bench" "$@"
fi
exec "$bench" --output BENCH_perf.json "$@"
