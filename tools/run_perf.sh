#!/usr/bin/env sh
# Convenience wrapper around bench_perf_throughput: finds the binary
# in the usual build directories (or $SMT_BUILD_DIR), defaults the
# output file to BENCH_perf.json in the current directory, and
# forwards every argument. The cells cover the 1/2/4-thread
# single-core mixes plus two 2-core x 2-thread CMP cells: 2C4T
# (static LLC arbiter) and 2C4T-DCRA (chip-dcra LLC arbitration).
# The "mcycles_per_sec_4t" aggregate tracks the single-core hot
# path only, so it stays comparable across PRs;
# "mcycles_per_sec_2c4t" tracks the chip layer's own cost (static
# arbiter only, comparable since PR 4) and
# "mcycles_per_sec_2c4t_chipdcra" the arbitration hot path.
# Examples:
#
#   tools/run_perf.sh --quick
#   tools/run_perf.sh --label after --baseline BENCH_before.json
#
# A Release build is strongly recommended; the numbers are meant to
# track the simulator's hot-path performance over time.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

bench=""
for dir in "${SMT_BUILD_DIR:-}" "$root/build" "$root/build-release" \
           "$root/build-shim"; do
    [ -n "$dir" ] && [ -x "$dir/bench_perf_throughput" ] || continue
    bench="$dir/bench_perf_throughput"
    break
done

if [ -z "$bench" ]; then
    echo "run_perf.sh: no bench_perf_throughput binary found;" >&2
    echo "build first (Release recommended):" >&2
    echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release" >&2
    echo "  cmake --build build -j" >&2
    exit 1
fi

# Default the output file unless the caller already chose one.
has_output=0
for arg in "$@"; do
    [ "$arg" = "--output" ] && has_output=1
done

if [ "$has_output" = 1 ]; then
    exec "$bench" "$@"
fi
exec "$bench" --output BENCH_perf.json "$@"
