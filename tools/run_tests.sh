#!/usr/bin/env bash
# Convenience wrapper around the tier-1 verify loop:
#   configure + build + ctest, in one command.
#
# Usage:
#   tools/run_tests.sh                 # Release, auto-detected gtest
#   tools/run_tests.sh --debug         # Debug build
#   tools/run_tests.sh --shim          # force the vendored gtest shim
#   tools/run_tests.sh --werror        # -Werror
#   tools/run_tests.sh --lint          # also run smtlint (+ clang-tidy
#                                      # when installed) like CI's lint job
#   tools/run_tests.sh -- <ctest args> # extra args after -- go to ctest
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_type=Release
shim=OFF
werror=OFF
lint=OFF
ctest_args=()

while [[ $# -gt 0 ]]; do
    case "$1" in
      --debug) build_type=Debug ;;
      --release) build_type=Release ;;
      --shim) shim=ON ;;
      --werror) werror=ON ;;
      --lint) lint=ON ;;
      --) shift; ctest_args=("$@"); break ;;
      *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
    shift
done

build_dir="$repo_root/build-$(echo "$build_type" | tr '[:upper:]' '[:lower:]')"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
[[ "$shim" == ON ]] && build_dir="$build_dir-shim"

cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE="$build_type" \
    -DSMT_FORCE_GTEST_SHIM="$shim" \
    -DSMT_WERROR="$werror"
cmake --build "$build_dir" -j "$jobs"
# ${arr[@]+...} guard: empty-array expansion under `set -u` is an
# error on bash < 4.4 (macOS ships 3.2).
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
    ${ctest_args[@]+"${ctest_args[@]}"}

if [[ "$lint" == ON ]]; then
    echo "== smtlint =="
    cmake --build "$build_dir" -j "$jobs" --target smtlint
    "$build_dir/smtlint" --root "$repo_root" \
        --compdb "$build_dir/compile_commands.json" \
        "$repo_root/src" "$repo_root/tools" "$repo_root/tests"
    if command -v run-clang-tidy >/dev/null 2>&1; then
        echo "== clang-tidy =="
        run-clang-tidy -quiet -p "$build_dir" \
            "$repo_root/(src|tools|tests)/.*\.cc$"
    else
        echo "clang-tidy not installed; skipping (CI runs it)" >&2
    fi
fi
