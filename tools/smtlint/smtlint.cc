/**
 * @file
 * smtlint — the repo's determinism-contract static analyzer.
 *
 * The simulator's crown jewel is byte-reproducibility: every golden,
 * sweep, journal and telemetry byte is identical across --jobs and
 * --chip-jobs worker counts, and host-time/nondeterminism is
 * quarantined into src/prof/. That contract is enforced dynamically
 * by the byte-diff CI jobs; smtlint enforces it *statically*, at
 * review time, as named and individually suppressible rules:
 *
 *   D1  wall-clock / random / env / locale APIs (system_clock,
 *       steady_clock, time(), rand(), getenv, setlocale, ...) —
 *       host state leaking into simulated results.
 *   D2  direct float formatting (printf float conversions in string
 *       literals, std::to_string on a float-typed argument, stream
 *       float manipulators, ostream << double) — all deterministic
 *       output must route through fmtDouble/fmtDoubleExact/fmtU64
 *       in src/common/json.hh.
 *   D3  range-for / iterator loops over unordered_map/unordered_set
 *       in files that emit output (iteration order is host- and
 *       libstdc++-version-dependent).
 *   D4  raw stderr writes (fprintf(stderr, ...), std::cerr) outside
 *       src/common/logging.cc — --chip-jobs workers interleave
 *       mid-line; logging.cc emits whole lines with one fwrite.
 *   D5  volatile-as-synchronization and mutable data members that
 *       are not std::atomic/mutex (cheap race heuristic that
 *       complements TSan, it does not replace it).
 *
 * Deliberately a lightweight tokenizer, not a compiler frontend: it
 * builds offline with zero dependencies, lexes comments / string
 * literals / identifiers correctly, and accepts a small false-match
 * rate in exchange. Escape hatches, both requiring a reason:
 *
 *   - inline:    // smtlint:allow(D1,D2): <why this line is fine>
 *     (suppresses findings on its own line, or on the next line
 *     when the comment stands alone)
 *   - allowlist: tools/smtlint/allowlist.txt path-prefix entries
 *     for whole files/directories that own a contract exemption.
 *
 * Findings print "file:line: RULE message" on stdout and the exit
 * code is 1 when any unsuppressed finding exists (2 on usage/IO
 * errors), so CI can gate on it directly.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Tok
{
    enum Kind { Ident, Num, Str, Chr, Punct };
    Kind kind;
    std::string text; // string literals hold the *content*, unquoted
    int line;
};

struct Suppression
{
    int commentLine = 0;   // line the comment itself sits on
    std::set<std::string> rules;
    bool hasReason = false;
    bool malformed = false; // recognized smtlint: marker, bad syntax
};

struct LexedFile
{
    std::string path;      // root-relative, forward slashes
    std::vector<Tok> toks;
    std::vector<Suppression> sups;
    std::set<int> codeLines; // lines that carry at least one token
};

bool
isIdentStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool
isIdentChar(char c)
{
    return isIdentStart(c) || (c >= '0' && c <= '9');
}

/** Parse a "smtlint:allow(D1,D2): reason" marker out of comment text. */
void
parseSuppression(const std::string &comment, int line,
                 std::vector<Suppression> &out)
{
    const std::size_t at = comment.find("smtlint:allow");
    if (at == std::string::npos)
        return;
    Suppression s;
    s.commentLine = line;
    std::size_t i = at + std::strlen("smtlint:allow");
    if (i >= comment.size() || comment[i] != '(') {
        s.malformed = true;
        out.push_back(s);
        return;
    }
    const std::size_t close = comment.find(')', i);
    if (close == std::string::npos) {
        s.malformed = true;
        out.push_back(s);
        return;
    }
    std::string rules = comment.substr(i + 1, close - i - 1);
    std::string cur;
    for (const char c : rules + ",") {
        if (c == ',') {
            if (!cur.empty())
                s.rules.insert(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    // A reason is mandatory: "): <non-empty text>".
    std::size_t r = close + 1;
    if (r < comment.size() && comment[r] == ':') {
        ++r;
        while (r < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[r])))
            ++r;
        s.hasReason = r < comment.size();
    }
    if (s.rules.empty())
        s.malformed = true;
    out.push_back(s);
}

/** Lex one file: tokens, comments scanned for suppressions. */
LexedFile
lexFile(const std::string &relPath, const std::string &src)
{
    LexedFile f;
    f.path = relPath;
    const std::size_t n = src.size();
    std::size_t i = 0;
    int line = 1;

    auto push = [&](Tok::Kind k, std::string text) {
        f.toks.push_back(Tok{k, std::move(text), line});
        f.codeLines.insert(line);
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t e = src.find('\n', i);
            if (e == std::string::npos)
                e = n;
            parseSuppression(src.substr(i, e - i), line, f.sups);
            i = e;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const std::size_t e = src.find("*/", i + 2);
            const std::size_t stop = e == std::string::npos ? n : e + 2;
            parseSuppression(src.substr(i, stop - i), line, f.sups);
            for (std::size_t k = i; k < stop; ++k)
                if (src[k] == '\n')
                    ++line;
            i = stop;
            continue;
        }
        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            std::size_t d = i + 2;
            while (d < n && src[d] != '(')
                ++d;
            const std::string delim =
                ")" + src.substr(i + 2, d - i - 2) + "\"";
            const std::size_t e = src.find(delim, d);
            const std::size_t stop =
                e == std::string::npos ? n : e + delim.size();
            push(Tok::Str, src.substr(d + 1, e == std::string::npos
                                                 ? n - d - 1
                                                 : e - d - 1));
            for (std::size_t k = i; k < stop; ++k)
                if (src[k] == '\n')
                    ++line;
            i = stop;
            continue;
        }
        // String / char literal with escapes.
        if (c == '"' || c == '\'') {
            const char q = c;
            std::string content;
            std::size_t k = i + 1;
            while (k < n && src[k] != q) {
                if (src[k] == '\\' && k + 1 < n) {
                    content += src[k];
                    content += src[k + 1];
                    k += 2;
                } else {
                    if (src[k] == '\n')
                        ++line; // unterminated; stay sane
                    content += src[k];
                    ++k;
                }
            }
            push(q == '"' ? Tok::Str : Tok::Chr, content);
            i = k + 1;
            continue;
        }
        // Number (handles 1'000'000 digit separators, hex, exponents
        // and suffixes so the `'` separators are not read as char
        // literals).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            std::size_t k = i;
            while (k < n &&
                   (std::isalnum(static_cast<unsigned char>(src[k])) ||
                    src[k] == '.' || src[k] == '\'' ||
                    ((src[k] == '+' || src[k] == '-') && k > i &&
                     (src[k - 1] == 'e' || src[k - 1] == 'E' ||
                      src[k - 1] == 'p' || src[k - 1] == 'P'))))
                ++k;
            push(Tok::Num, src.substr(i, k - i));
            i = k;
            continue;
        }
        // Identifier.
        if (isIdentStart(c)) {
            std::size_t k = i;
            while (k < n && isIdentChar(src[k]))
                ++k;
            push(Tok::Ident, src.substr(i, k - i));
            i = k;
            continue;
        }
        // Punctuation; '::', '<<', '>>', '->' kept as one token.
        if (i + 1 < n) {
            const char d = src[i + 1];
            if ((c == ':' && d == ':') || (c == '<' && d == '<') ||
                (c == '>' && d == '>') || (c == '-' && d == '>')) {
                push(Tok::Punct, src.substr(i, 2));
                i += 2;
                continue;
            }
        }
        push(Tok::Punct, std::string(1, c));
        ++i;
    }
    return f;
}

// ---------------------------------------------------------------------------
// Findings, suppressions, allowlist
// ---------------------------------------------------------------------------

struct Finding
{
    std::string file;
    int line;
    std::string rule;
    std::string message;

    bool operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        if (rule != o.rule)
            return rule < o.rule;
        return message < o.message;
    }
};

struct AllowEntry
{
    std::string prefix; // root-relative path prefix
    std::set<std::string> rules; // empty = all rules
};

const char *const kRuleIds[] = {"D1", "D2", "D3", "D4", "D5"};

bool
isKnownRule(const std::string &r)
{
    for (const char *k : kRuleIds)
        if (r == k)
            return true;
    return false;
}

// ---------------------------------------------------------------------------
// Rule tables
// ---------------------------------------------------------------------------

// D1: banned wherever they appear as an identifier.
const std::set<std::string> kD1Bare = {
    "system_clock",   "steady_clock",  "high_resolution_clock",
    "gettimeofday",   "clock_gettime", "localtime",
    "localtime_r",    "gmtime",        "gmtime_r",
    "strftime",       "mktime",        "getenv",
    "secure_getenv",  "setenv",        "putenv",
    "unsetenv",       "setlocale",     "srand",
    "srandom",        "drand48",       "random_device",
};

// D1: banned only as a direct call (short names would otherwise
// false-match member functions and locals).
const std::set<std::string> kD1Call = {"time", "clock", "rand", "random"};

// D5: a mutable member is fine when its type is a synchronization or
// atomic primitive; anything else is mutation hidden behind const.
const std::set<std::string> kD5SyncTypes = {
    "atomic",          "atomic_flag",  "mutex",
    "shared_mutex",    "timed_mutex",  "recursive_mutex",
    "once_flag",       "condition_variable",
    "condition_variable_any",
};

// D3 fires only in files that plausibly emit output or feed sinks.
const std::set<std::string> kOutputMarkers = {
    "printf",   "fprintf",     "snprintf",  "vsnprintf", "fwrite",
    "fputs",    "ostream",     "ofstream",  "ostringstream",
    "stringstream", "ResultSink", "TelemetryHub", "render",
    "fmtDouble", "fmtDoubleExact", "fmtU64", "hexU64", "jsonEscape",
};

// ---------------------------------------------------------------------------
// Rule evaluation
// ---------------------------------------------------------------------------

/**
 * Scan a string literal's content for a printf float conversion.
 * Returns the spec (without the leading percent) or "" when none.
 */
std::string
findFloatConversion(const std::string &s)
{
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%')
            continue;
        std::size_t j = i + 1;
        if (j < s.size() && s[j] == '%') {
            i = j;
            continue;
        }
        const std::size_t start = j;
        while (j < s.size() && std::strchr("-+ #0'", s[j]))
            ++j;
        while (j < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[j])) ||
                s[j] == '*'))
            ++j;
        if (j < s.size() && s[j] == '.') {
            ++j;
            while (j < s.size() &&
                   (std::isdigit(static_cast<unsigned char>(s[j])) ||
                    s[j] == '*'))
                ++j;
        }
        while (j < s.size() && std::strchr("lhLqjzt", s[j]))
            ++j;
        if (j < s.size() && std::strchr("fFgGeEaA", s[j]))
            return s.substr(start, j - start + 1);
    }
    return "";
}

/** True when the numeric literal text is a floating constant. */
bool
isFloatLiteral(const std::string &t)
{
    if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X'))
        return t.find('p') != std::string::npos ||
               t.find('P') != std::string::npos;
    return t.find('.') != std::string::npos ||
           t.find('e') != std::string::npos ||
           t.find('E') != std::string::npos;
}

struct FileAnalysis
{
    std::set<std::string> floatIdents;     // declared double/float
    std::set<std::string> unorderedTypes;  // unordered_* + aliases
    std::set<std::string> unorderedVars;   // variables of those types
    bool emitsOutput = false;
};

/** Skip a balanced <...> template argument list; t at '<'. */
std::size_t
skipAngles(const std::vector<Tok> &toks, std::size_t t)
{
    int depth = 0;
    for (; t < toks.size(); ++t) {
        const std::string &x = toks[t].text;
        if (toks[t].kind != Tok::Punct)
            continue;
        if (x == "<")
            ++depth;
        else if (x == ">")
            --depth;
        else if (x == ">>")
            depth -= 2;
        else if (x == ";")
            return t; // runaway (comparison, not template)
        if (depth <= 0)
            return t + 1;
    }
    return t;
}

FileAnalysis
analyzeFile(const LexedFile &f)
{
    FileAnalysis a;
    a.unorderedTypes = {"unordered_map", "unordered_set",
                        "unordered_multimap", "unordered_multiset"};
    const std::vector<Tok> &ts = f.toks;
    for (std::size_t t = 0; t < ts.size(); ++t) {
        if (ts[t].kind != Tok::Ident)
            continue;
        const std::string &x = ts[t].text;
        if (kOutputMarkers.count(x))
            a.emitsOutput = true;
        // `double ident` / `float ident` declarations (also catches
        // double-returning function declarations, which is what we
        // want: to_string(f()) on such an f is a float conversion).
        if (x == "double" || x == "float") {
            std::size_t k = t + 1;
            while (k < ts.size() &&
                   (ts[k].text == "*" || ts[k].text == "&" ||
                    ts[k].text == "const"))
                ++k;
            if (k < ts.size() && ts[k].kind == Tok::Ident)
                a.floatIdents.insert(ts[k].text);
            continue;
        }
        // `using Alias = ... unordered_map<...> ...;`
        if (x == "using" && t + 2 < ts.size() &&
            ts[t + 1].kind == Tok::Ident && ts[t + 2].text == "=") {
            for (std::size_t k = t + 3;
                 k < ts.size() && ts[k].text != ";"; ++k) {
                if (ts[k].kind == Tok::Ident &&
                    a.unorderedTypes.count(ts[k].text)) {
                    a.unorderedTypes.insert(ts[t + 1].text);
                    break;
                }
            }
            continue;
        }
        // `unordered_map<K, V> name` declarations.
        if (a.unorderedTypes.count(x)) {
            std::size_t k = t + 1;
            if (k < ts.size() && ts[k].text == "<")
                k = skipAngles(ts, k);
            while (k < ts.size() &&
                   (ts[k].text == "*" || ts[k].text == "&" ||
                    ts[k].text == "const"))
                ++k;
            if (k < ts.size() && ts[k].kind == Tok::Ident)
                a.unorderedVars.insert(ts[k].text);
        }
    }
    return a;
}

void
runRules(const LexedFile &f, const FileAnalysis &a,
         const std::set<std::string> &enabled,
         std::vector<Finding> &out)
{
    const std::vector<Tok> &ts = f.toks;

    auto add = [&](const std::string &rule, int line,
                   const std::string &msg) {
        if (enabled.count(rule))
            out.push_back(Finding{f.path, line, rule, msg});
    };

    auto prevIs = [&](std::size_t t, const char *p) {
        return t > 0 && ts[t - 1].text == p;
    };

    for (std::size_t t = 0; t < ts.size(); ++t) {
        const Tok &tok = ts[t];

        // ---- D2: float conversions inside string literals --------
        if (tok.kind == Tok::Str) {
            const std::string spec = findFloatConversion(tok.text);
            if (!spec.empty())
                add("D2", tok.line,
                    "float printf conversion '" + spec +
                        "' in a format string; deterministic output "
                        "must go through fmtDouble/fmtDoubleExact "
                        "(src/common/json.hh)");
            continue;
        }
        if (tok.kind != Tok::Ident && tok.kind != Tok::Punct)
            continue;

        // Member access never refers to the global API: obj.time().
        const bool memberAccess = prevIs(t, ".") || prevIs(t, "->");

        if (tok.kind == Tok::Ident && !memberAccess) {
            const std::string &x = tok.text;
            const bool called =
                t + 1 < ts.size() && ts[t + 1].text == "(";

            // ---- D1: host clock / random / env / locale ----------
            if (kD1Bare.count(x)) {
                add("D1", tok.line,
                    "'" + x + "' leaks host state (wall clock / "
                    "randomness / environment / locale) into the "
                    "run; host timing belongs in src/prof/");
            } else if (kD1Call.count(x) && called) {
                // Qualified foo::time() for a non-std namespace is
                // someone else's symbol.
                bool otherNamespace = false;
                if (prevIs(t, "::") && t >= 2 &&
                    ts[t - 2].kind == Tok::Ident &&
                    ts[t - 2].text != "std")
                    otherNamespace = true;
                if (!otherNamespace)
                    add("D1", tok.line,
                        "'" + x + "()' is host wall-clock/random "
                        "state; simulated time must come from the "
                        "cycle counter, seeds from common/random.hh");
            }

            // ---- D2: to_string on a float, stream manipulators ---
            if (x == "to_string" && called) {
                int depth = 0;
                for (std::size_t k = t + 1; k < ts.size(); ++k) {
                    if (ts[k].text == "(")
                        ++depth;
                    else if (ts[k].text == ")" && --depth == 0)
                        break;
                    const bool isFloatArg =
                        (ts[k].kind == Tok::Ident &&
                         a.floatIdents.count(ts[k].text)) ||
                        (ts[k].kind == Tok::Num &&
                         isFloatLiteral(ts[k].text));
                    if (isFloatArg) {
                        add("D2", tok.line,
                            "std::to_string on a float-typed "
                            "argument is locale-dependent; use "
                            "fmtDouble/fmtDoubleExact "
                            "(src/common/json.hh)");
                        break;
                    }
                }
            }
            if (x == "setprecision" || x == "hexfloat" ||
                ((x == "fixed" || x == "scientific" ||
                  x == "defaultfloat") &&
                 prevIs(t, "::") && t >= 2 && ts[t - 2].text == "std")) {
                add("D2", tok.line,
                    "stream float formatting ('" + x + "') bypasses "
                    "the fixed-format helpers in src/common/json.hh");
            }

            // ---- D4: raw stderr ----------------------------------
            if (x == "stderr")
                add("D4", tok.line,
                    "raw stderr write; --chip-jobs workers "
                    "interleave mid-line — route through the "
                    "single-fwrite helpers in src/common/logging.cc");
            if (x == "cerr")
                add("D4", tok.line,
                    "std::cerr interleaves across worker threads; "
                    "route through src/common/logging.cc");

            // ---- D5: volatile / mutable --------------------------
            if (x == "volatile")
                add("D5", tok.line,
                    "volatile is not synchronization; use "
                    "std::atomic (TSan cannot see volatile races)");
            if (x == "mutable") {
                bool sync = false;
                for (std::size_t k = t + 1;
                     k < ts.size() && k < t + 16 && ts[k].text != ";";
                     ++k)
                    if (ts[k].kind == Tok::Ident &&
                        kD5SyncTypes.count(ts[k].text)) {
                        sync = true;
                        break;
                    }
                if (!sync)
                    add("D5", tok.line,
                        "mutable member without std::atomic/mutex "
                        "type: mutation inside const methods is a "
                        "data race under --chip-jobs");
            }

            // ---- D3: iteration over unordered containers ---------
            if (a.emitsOutput && x == "for" && t + 1 < ts.size() &&
                ts[t + 1].text == "(") {
                int depth = 0;
                std::size_t colon = 0, close = 0;
                for (std::size_t k = t + 1; k < ts.size(); ++k) {
                    if (ts[k].text == "(")
                        ++depth;
                    else if (ts[k].text == ")" && --depth == 0) {
                        close = k;
                        break;
                    } else if (ts[k].text == ":" && depth == 1 &&
                               !colon)
                        colon = k;
                }
                if (colon && close)
                    for (std::size_t k = colon + 1; k < close; ++k)
                        if (ts[k].kind == Tok::Ident &&
                            a.unorderedVars.count(ts[k].text)) {
                            add("D3", ts[k].line,
                                "range-for over unordered container "
                                "'" + ts[k].text + "' in an "
                                "output-emitting file: iteration "
                                "order is host-dependent; sort or "
                                "use an ordered container");
                            break;
                        }
            }
            if (a.emitsOutput && a.unorderedVars.count(x) &&
                t + 2 < ts.size() &&
                (ts[t + 1].text == "." || ts[t + 1].text == "->") &&
                (ts[t + 2].text == "begin" ||
                 ts[t + 2].text == "cbegin"))
                add("D3", tok.line,
                    "iterator walk of unordered container '" + x +
                        "' in an output-emitting file: iteration "
                        "order is host-dependent");
        }
    }

    // Malformed suppressions are findings themselves: a suppression
    // that silently failed to parse would hide real violations.
    for (const Suppression &s : f.sups) {
        if (s.malformed) {
            out.push_back(Finding{
                f.path, s.commentLine, "LINT",
                "malformed smtlint:allow marker (expected "
                "smtlint:allow(D1[,D2...]): reason)"});
            continue;
        }
        if (!s.hasReason)
            out.push_back(Finding{f.path, s.commentLine, "LINT",
                                  "smtlint:allow without a reason "
                                  "(append ': <why>')"});
        for (const std::string &r : s.rules)
            if (!isKnownRule(r))
                out.push_back(Finding{f.path, s.commentLine, "LINT",
                                      "unknown rule '" + r +
                                          "' in smtlint:allow"});
    }
}

/** Drop findings covered by inline suppressions or the allowlist. */
std::vector<Finding>
filterFindings(const std::vector<Finding> &raw, const LexedFile &f,
               const std::vector<AllowEntry> &allow)
{
    // A suppression on a comment-only line covers the next line.
    std::map<int, std::set<std::string>> byLine;
    for (const Suppression &s : f.sups) {
        if (s.malformed || !s.hasReason)
            continue;
        const int effective = f.codeLines.count(s.commentLine)
                                  ? s.commentLine
                                  : s.commentLine + 1;
        byLine[effective].insert(s.rules.begin(), s.rules.end());
    }

    std::vector<Finding> kept;
    for (const Finding &fd : raw) {
        if (fd.rule != "LINT") {
            const auto it = byLine.find(fd.line);
            if (it != byLine.end() && it->second.count(fd.rule))
                continue;
            bool allowed = false;
            for (const AllowEntry &e : allow)
                if (fd.file.rfind(e.prefix, 0) == 0 &&
                    (e.rules.empty() || e.rules.count(fd.rule))) {
                    allowed = true;
                    break;
                }
            if (allowed)
                continue;
        }
        kept.push_back(fd);
    }
    return kept;
}

// ---------------------------------------------------------------------------
// Inputs: allowlist file, compile_commands.json, directory walk
// ---------------------------------------------------------------------------

bool
loadAllowlist(const std::string &path, std::vector<AllowEntry> &out,
              std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot read allowlist '" + path + "'";
        return false;
    }
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ss(line);
        AllowEntry e;
        std::string rules;
        if (!(ss >> e.prefix))
            continue;
        if (ss >> rules) {
            std::string cur;
            for (const char c : rules + ",") {
                if (c == ',') {
                    if (!cur.empty()) {
                        if (!isKnownRule(cur) && cur != "LINT") {
                            err = path + ":" +
                                  std::to_string(lineNo) +
                                  ": unknown rule '" + cur + "'";
                            return false;
                        }
                        e.rules.insert(cur);
                    }
                    cur.clear();
                } else {
                    cur += c;
                }
            }
        }
        out.push_back(e);
    }
    return true;
}

/** Pull the "file" entries out of a compile_commands.json. */
bool
loadCompdb(const std::string &path, std::vector<std::string> &out,
           std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot read compile database '" + path + "'";
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const std::string key = "\"file\"";
    std::size_t i = 0;
    while ((i = text.find(key, i)) != std::string::npos) {
        std::size_t q = text.find('"', i + key.size() + 1);
        if (q == std::string::npos)
            break;
        std::string val;
        for (++q; q < text.size() && text[q] != '"'; ++q) {
            if (text[q] == '\\' && q + 1 < text.size())
                val += text[++q];
            else
                val += text[q];
        }
        out.push_back(val);
        i = q;
    }
    return true;
}

bool
hasSourceExtension(const fs::path &p)
{
    const std::string e = p.extension().string();
    return e == ".cc" || e == ".hh" || e == ".cpp" || e == ".h" ||
           e == ".hpp" || e == ".cxx";
}

/** Default exclusions for the recursive walk (never for explicit
 * file arguments): build trees, git metadata, and the deliberately
 * violating lint fixtures. */
bool
isExcludedDir(const std::string &name)
{
    return name == ".git" || name.rfind("build", 0) == 0 ||
           name == "lint_fixtures";
}

void
walk(const fs::path &dir, std::vector<fs::path> &out)
{
    std::vector<fs::path> entries;
    for (const auto &e : fs::directory_iterator(dir))
        entries.push_back(e.path());
    std::sort(entries.begin(), entries.end());
    for (const fs::path &p : entries) {
        if (fs::is_directory(p)) {
            if (!isExcludedDir(p.filename().string()))
                walk(p, out);
        } else if (hasSourceExtension(p)) {
            out.push_back(p);
        }
    }
}

std::string
relativeTo(const fs::path &root, const fs::path &p)
{
    std::error_code ec;
    const fs::path rel = fs::relative(p, root, ec);
    std::string s = (ec || rel.empty()) ? p.string() : rel.string();
    std::replace(s.begin(), s.end(), '\\', '/');
    return s;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

const char *const kRuleHelp[] = {
    "D1  wall-clock/random/env/locale APIs outside the host-prof "
    "allowlist",
    "D2  direct float formatting outside src/common/json.hh "
    "(printf float conversions, to_string(double), stream "
    "manipulators)",
    "D3  iteration over unordered containers in output-emitting "
    "files",
    "D4  raw stderr writes outside src/common/logging.cc",
    "D5  volatile-as-synchronization / non-atomic mutable members",
};

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: smtlint [options] [path...]\n"
        "\n"
        "Determinism-contract static analyzer. Paths may be files or\n"
        "directories (recursed; build*/, .git/ and tests/lint_fixtures/\n"
        "skipped). With no paths: src tools tests bench examples under\n"
        "--root.\n"
        "\n"
        "options:\n"
        "  --root DIR        repo root for relative paths (default: .)\n"
        "  --allowlist FILE  path-prefix exemptions (default:\n"
        "                    ROOT/tools/smtlint/allowlist.txt if present;\n"
        "                    'none' disables)\n"
        "  --compdb FILE     add the files of a compile_commands.json\n"
        "  --rules LIST      comma-separated subset of rules to run\n"
        "  --list-rules      print the rule table and exit\n"
        "  -h, --help        this text\n"
        "\n"
        "Suppress a single line with a trailing or preceding comment:\n"
        "  // smtlint:allow(D1): <reason>\n"
        "Exit codes: 0 clean, 1 findings, 2 usage/IO error.\n",
        to);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string rootArg = ".";
    std::string allowlistArg;
    std::vector<std::string> compdbs;
    std::vector<std::string> pathArgs;
    std::set<std::string> enabled(std::begin(kRuleIds),
                                  std::end(kRuleIds));

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                // smtlint:allow(D4): lint driver CLI errors; single-threaded by construction
                std::fprintf(stderr, "smtlint: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--root") {
            rootArg = value("--root");
        } else if (a == "--allowlist") {
            allowlistArg = value("--allowlist");
        } else if (a == "--compdb") {
            compdbs.push_back(value("--compdb"));
        } else if (a == "--rules") {
            enabled.clear();
            std::string cur;
            for (const char c : std::string(value("--rules")) + ",") {
                if (c == ',') {
                    if (!cur.empty()) {
                        if (!isKnownRule(cur)) {
                            // smtlint:allow(D4): lint driver CLI errors; single-threaded by construction
                            std::fprintf(stderr,
                                         "smtlint: unknown rule "
                                         "'%s'\n",
                                         cur.c_str());
                            return 2;
                        }
                        enabled.insert(cur);
                    }
                    cur.clear();
                } else {
                    cur += c;
                }
            }
        } else if (a == "--list-rules") {
            for (const char *h : kRuleHelp)
                std::printf("%s\n", h);
            return 0;
        } else if (a == "-h" || a == "--help") {
            usage(stdout);
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            // smtlint:allow(D4): lint driver CLI errors; single-threaded by construction
            std::fprintf(stderr, "smtlint: unknown option '%s'\n",
                         a.c_str());
            usage(stderr); // smtlint:allow(D4): same single-threaded CLI error path
            return 2;
        } else {
            pathArgs.push_back(a);
        }
    }

    const fs::path root = fs::absolute(rootArg);
    if (!fs::exists(root)) {
        // smtlint:allow(D4): lint driver CLI errors; single-threaded by construction
        std::fprintf(stderr, "smtlint: root '%s' does not exist\n",
                     rootArg.c_str());
        return 2;
    }

    // Allowlist: explicit path, or the checked-in default.
    std::vector<AllowEntry> allow;
    std::string err;
    if (allowlistArg != "none") {
        std::string path = allowlistArg;
        if (path.empty()) {
            const fs::path def = root / "tools/smtlint/allowlist.txt";
            if (fs::exists(def))
                path = def.string();
        }
        if (!path.empty() && !loadAllowlist(path, allow, err)) {
            // smtlint:allow(D4): lint driver CLI errors; single-threaded by construction
            std::fprintf(stderr, "smtlint: %s\n", err.c_str());
            return 2;
        }
    }

    // Build the file list: positional paths + compile databases,
    // defaulting to the whole tree. Deterministic order, deduped.
    std::vector<fs::path> files;
    if (pathArgs.empty() && compdbs.empty())
        pathArgs = {"src", "tools", "tests", "bench", "examples"};
    for (const std::string &p : pathArgs) {
        fs::path abs = fs::path(p).is_absolute() ? fs::path(p)
                                                 : root / p;
        if (fs::is_directory(abs)) {
            walk(abs, files);
        } else if (fs::exists(abs)) {
            files.push_back(abs);
        } else {
            // smtlint:allow(D4): lint driver CLI errors; single-threaded by construction
            std::fprintf(stderr, "smtlint: no such path '%s'\n",
                         p.c_str());
            return 2;
        }
    }
    for (const std::string &db : compdbs) {
        std::vector<std::string> entries;
        if (!loadCompdb(db, entries, err)) {
            // smtlint:allow(D4): lint driver CLI errors; single-threaded by construction
            std::fprintf(stderr, "smtlint: %s\n", err.c_str());
            return 2;
        }
        for (const std::string &e : entries) {
            fs::path abs = fs::path(e).is_absolute() ? fs::path(e)
                                                     : root / e;
            // Only lint files that live under the repo root; the
            // compile database also names generated/vendored TUs.
            const std::string rel = relativeTo(root, abs);
            if (rel.rfind("..", 0) == 0 || rel.rfind("build", 0) == 0)
                continue;
            if (fs::exists(abs) && hasSourceExtension(abs))
                files.push_back(abs);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Finding> all;
    for (const fs::path &p : files) {
        std::ifstream in(p, std::ios::binary);
        if (!in) {
            // smtlint:allow(D4): lint driver CLI errors; single-threaded by construction
            std::fprintf(stderr, "smtlint: cannot read '%s'\n",
                         p.string().c_str());
            return 2;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const LexedFile lf = lexFile(relativeTo(root, p), buf.str());
        const FileAnalysis fa = analyzeFile(lf);
        std::vector<Finding> raw;
        runRules(lf, fa, enabled, raw);
        const std::vector<Finding> kept =
            filterFindings(raw, lf, allow);
        all.insert(all.end(), kept.begin(), kept.end());
    }

    std::sort(all.begin(), all.end());
    for (const Finding &fd : all)
        std::printf("%s:%d: %s %s\n", fd.file.c_str(), fd.line,
                    fd.rule.c_str(), fd.message.c_str());
    if (!all.empty()) {
        // smtlint:allow(D4): lint driver summary; single-threaded by construction
        std::fprintf(stderr,
                     "smtlint: %zu finding(s) in %zu file(s)\n",
                     all.size(), files.size());
        return 1;
    }
    return 0;
}
